// The deployable ROAR cluster: front-end + membership + N storage nodes,
// each endpoint on its own loopback TCP listener, exchanging byte-for-byte
// the protocol the emulated cluster runs in virtual time.
//
// Single-threaded: every socket and timer is driven by one TcpDriver poll
// loop, so the harness behaves like an event-driven deployment compressed
// into one process. Node "matching work" follows the same Definition-8
// cost model as the emulation (service time is modeled, then actually
// elapses on the wall clock before the reply is sent), which is what makes
// the InProc-vs-TCP parity test able to demand identical query outcomes.
#pragma once

#include <memory>
#include <vector>

#include "cluster/control.h"
#include "cluster/frontend.h"
#include "cluster/node.h"
#include "core/membership.h"
#include "net/tcp_transport.h"

namespace roar::cluster {

struct TcpClusterConfig {
  uint32_t nodes = 8;
  // Per-node relative speeds; padded with 1.0 up to `nodes`.
  std::vector<double> speeds;
  uint64_t dataset_size = 100'000;
  uint32_t p = 4;
  FrontendParams frontend;  // p is overwritten from the field above
  NodeParams node_proto;    // id/speed overwritten per node
  uint64_t seed = 1;
  uint32_t initial_balance_steps = 800;
  // Latency hint fed to the delay estimator (loopback RTT scale).
  double latency_hint_s = 100e-6;

  // --- execution engine --------------------------------------------------
  // Worker lanes per node (its core count). 0 = the original inline,
  // single-pipeline node; N > 0 = an N-wide matching pipeline on a
  // per-node core::WorkerPool, with sub-queries batched per loop wakeup
  // and completions posted back to the driver thread.
  uint32_t node_workers = 0;
  // Max sub-queries a node drains into the pool per wakeup.
  size_t exec_batch_max = 16;
  // Give every node a real pps corpus + query (one shared immutable
  // MatchEngine) instead of the analytic service model.
  bool real_matching = false;
  MatchEngineConfig engine;

  // --- live ingestion ----------------------------------------------------
  // Per-node IngestLog + versioned store and an IngestRouter on the
  // control endpoint. Implies real_matching (ingestion mutates the real
  // corpus, not the analytic model).
  bool enable_ingest = false;
  IngestConfig ingest;
};

class TcpCluster {
 public:
  explicit TcpCluster(TcpClusterConfig config);
  ~TcpCluster();

  net::TcpDriver& driver() { return driver_; }
  Frontend& frontend() { return *frontend_; }
  core::MembershipServer& membership() { return membership_; }

  size_t node_count() const { return nodes_.size(); }
  NodeRuntime& node(NodeId id) { return *nodes_.at(id); }
  uint16_t node_port(NodeId id) const;

  // Pushes authoritative ranges + current p to every node over the sockets
  // and re-syncs the front-end's ring mirror.
  void push_ranges();

  // Crash-stops a node: its endpoint unbinds, so frames addressed to it
  // vanish; the front-end must discover the failure by timeout.
  void kill_node(NodeId id);
  // Restarts a crashed node in place (it kept its data and its ingest
  // log); ranges are republished and the node's SyncSessions resume,
  // catching its index up with everything it missed.
  void revive_node(NodeId id);

  // Reconfiguration (§4.5) over the wire: fetch orders out, completions
  // back, ranges republished once safe.
  void change_p(uint32_t p_new);
  uint32_t safe_p() const { return frontend_->safe_p(); }

  // Submits one query and polls sockets + wall-clock timers until it
  // completes (or `timeout_s` passes — the outcome then has id == 0).
  QueryOutcome run_query(double timeout_s = 30.0);
  // `count` queries back-to-back (closed loop).
  std::vector<QueryOutcome> run_queries(uint32_t count,
                                        double per_query_timeout_s = 30.0);

  // Polls for `duration_s` wall seconds (timers keep firing).
  void run_for(double duration_s);

  // Aggregate traffic accounting across every endpoint's transport.
  uint64_t messages_sent() const;
  uint64_t bytes_sent() const;
  uint64_t messages_dropped() const;

  // The shared real-matching engine, or nullptr in modeled mode.
  const MatchEngine* engine() const { return engine_.get(); }

  // The ingest router, or nullptr when enable_ingest is unset.
  IngestRouter* ingest() { return ingest_router_.get(); }
  const IngestRouter* ingest() const { return ingest_router_.get(); }
  // Current replica views / convergence verdict (see cluster/ingest.h).
  std::vector<IngestReplicaView> ingest_replicas() const;
  bool ingest_converged() const;
  // Polls sockets + timers until converged or timeout; returns verdict.
  bool run_until_ingest_converged(double timeout_s = 20.0);
  // Execution-engine diagnostics summed over nodes / pools.
  uint64_t batches_drained() const;
  uint64_t batched_subqueries() const;
  uint64_t pool_tasks_executed() const;
  uint64_t pool_tasks_stolen() const;

 private:
  TcpClusterConfig config_;
  net::TcpDriver driver_;
  // transports_[0] hosts the front-end + membership + update-server
  // addresses (one "control process"); transports_[i + 1] hosts node i.
  std::vector<std::unique_ptr<net::TcpTransport>> transports_;
  core::MembershipServer membership_;
  std::unique_ptr<Frontend> frontend_;
  std::shared_ptr<const MatchEngine> engine_;
  std::unique_ptr<IngestRouter> ingest_router_;
  std::vector<std::unique_ptr<NodeRuntime>> nodes_;
  // Declared after nodes_ so pools are destroyed (drained and joined)
  // first: in-flight tasks capture raw node pointers. Completions they
  // posted may outlive the nodes unexecuted — the driver (destroyed last)
  // drops them without running.
  std::vector<std::unique_ptr<core::WorkerPool>> pools_;
};

}  // namespace roar::cluster
