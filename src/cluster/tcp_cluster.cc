#include "cluster/tcp_cluster.h"

#include <algorithm>
#include <stdexcept>

#include "common/logging.h"
#include "common/rng.h"

namespace roar::cluster {

TcpCluster::TcpCluster(TcpClusterConfig config)
    : config_(std::move(config)),
      driver_(config_.reactor_shards == 0 ? 1 : config_.reactor_shards),
      tracer_(driver_.shards()),
      // Seed streams are shared with EmulatedCluster (common/rng.h
      // subseed) so the same `seed` yields the same membership positions
      // and front-end decisions — the parity test depends on it.
      membership_(core::MembershipConfig{},
                  subseed(config_.seed, SeedStream::kMembership)) {
  config_.frontend.p = config_.p;
  config_.frontend.subquery_overhead_s = config_.node_proto.subquery_overhead_s;
  config_.speeds.resize(config_.nodes, 1.0);
  if (config_.frontends == 0) config_.frontends = 1;
  if (config_.slo.enabled) {
    // Same derivation as EmulatedCluster (core::resolve_slo): the
    // contract spec sizes the admission cap and the node queue bounds.
    double agg_rate = 0.0;
    for (double s : config_.speeds) {
      agg_rate += s * config_.node_proto.base_rate;
    }
    double cap_qps =
        agg_rate > 0
            ? 1.0 / (static_cast<double>(config_.dataset_size) / agg_rate +
                     config_.node_proto.subquery_overhead_s * config_.p /
                         std::max(1u, config_.nodes))
            : 0.0;
    double per_node_subq = cap_qps * config_.p / std::max(1u, config_.nodes);
    core::ResolvedSlo r = core::resolve_slo(
        config_.slo, cap_qps, per_node_subq, config_.frontends);
    config_.frontend.slo_enabled = true;
    config_.frontend.admission = r.admission;
    if (config_.node_proto.exec_queue_cap == 0) {
      config_.node_proto.exec_queue_cap = r.node_exec_queue_cap;
    }
    if (config_.node_proto.max_backlog_s <= 0) {
      config_.node_proto.max_backlog_s = r.node_max_backlog_s;
    }
  }

  // Control endpoint: control plane + front-ends share one listener, as
  // they share a process in the paper's deployment.
  transports_.push_back(std::make_unique<net::TcpTransport>(driver_));
  net::TcpTransport& control = *transports_.front();
  control.set_latency_hint(config_.latency_hint_s);

  ControlPlaneParams cp;
  cp.initial_p = config_.p;
  cp.retransmit_interval_s = config_.control_retransmit_s;
  cp.relay_fanout = config_.relay_fanout;
  cp.tree_divisor = config_.tree_divisor;
  control_ = std::make_unique<ControlPlane>(control, membership_, cp);
  control_->on_reconfigured = [](uint32_t new_p) {
    ROAR_LOG(kInfo) << "tcp-cluster: reconfiguration to p=" << new_p
                    << " complete";
  };
  control_->start();

  for (uint32_t i = 0; i < config_.frontends; ++i) {
    frontends_.push_back(std::make_unique<Frontend>(
        control, i, config_.frontend, config_.dataset_size,
        frontend_seed(config_.seed, i)));
    control_->subscribe_frontend(frontends_.back()->address());
    frontends_.back()->set_tracer(&tracer_, 0);
    frontends_.back()->set_latency_histogram(
        &metrics_.histogram("frontend.latency_s"));
    frontends_.back()->start();
  }

  // Real matching: one immutable engine shared by every node (each node
  // scans only the slice a sub-query's window selects, so sharing the
  // corpus changes nothing observable and saves N-1 encryptions).
  if (config_.enable_ingest) config_.real_matching = true;
  if (config_.real_matching) {
    engine_ = std::make_shared<const MatchEngine>(config_.engine);
  }
  if (config_.enable_ingest) {
    ingest_router_ = std::make_unique<IngestRouter>(
        control, config_.ingest, subseed(config_.seed, SeedStream::kIngest),
        engine_, [this] { return membership_.ring(0); },
        [this] { return control_->storage_p(); });
    ingest_router_->set_tracer(&tracer_, 0);
    ingest_router_->start();
    for (auto& fe : frontends_) fe->set_ingest(ingest_router_.get());
  }

  // One listener per storage node, spread round-robin over the reactor
  // shards. Everything below runs before driver_.start(), so registering
  // listeners with not-yet-running shard loops is single-threaded.
  for (NodeId id = 0; id < config_.nodes; ++id) {
    uint32_t shard = static_cast<uint32_t>(id % driver_.shards());
    node_shards_.push_back(shard);
    auto transport = std::make_unique<net::TcpTransport>(driver_, shard);
    transport->set_latency_hint(config_.latency_hint_s);
    NodeParams np = config_.node_proto;
    np.id = id;
    np.speed = config_.speeds[id];
    auto node = std::make_unique<NodeRuntime>(*transport, np,
                                              config_.dataset_size);
    // The node records trace events into its own shard's ring (loop
    // thread only — the TSan-bench contract).
    node->set_tracer(&tracer_, shard);
    node->set_service_histogram(&metrics_.histogram("node.service_s"));
    if (engine_) node->set_match_engine(engine_);
    if (config_.enable_ingest) node->enable_ingest(config_.ingest, engine_);
    if (config_.node_workers > 0) {
      // One pool per node: a node's lanes model its own cores, so capacity
      // scales per node exactly as the paper's thread sweeps do.
      pools_.push_back(
          std::make_unique<core::WorkerPool>(config_.node_workers));
      NodeExecutor exec;
      exec.pool = pools_.back().get();
      // Completions must land on the shard thread that owns this node's
      // transport and state, not on shard 0.
      exec.post = [this, shard](std::function<void()> fn) {
        driver_.post_to(shard, std::move(fn));
      };
      exec.batch_max = config_.exec_batch_max;
      node->set_executor(std::move(exec));
    }
    control_->subscribe_node(id);
    node->start();
    membership_.join(id, np.speed);
    transports_.push_back(std::move(transport));
    nodes_.push_back(std::move(node));
  }

  for (uint32_t i = 0; i < config_.initial_balance_steps; ++i) {
    if (membership_.balance_step() == 0.0) break;
  }
  publish_view();
  // Everything is registered; spin up the shard threads (no-op with one
  // shard) before the first drain.
  driver_.start();
  // Drain the first view epoch so every node knows its slice and every
  // front-end is ready before queries; serving with empty ranges would
  // silently corrupt outcomes, so a drain failure is fatal here. Nodes on
  // other shards are checked through their atomic readiness flag.
  bool synced = driver_.run_until([this] {
    for (const auto& n : nodes_) {
      if (!n->has_range()) return false;
    }
    for (const auto& fe : frontends_) {
      if (!fe->ready()) return false;
    }
    return true;
  });
  if (!synced) {
    throw std::runtime_error("TcpCluster: initial view never delivered");
  }

  register_gauges();
  // Flight dumps render from the caller thread (anomalies originate in
  // frontend timeout paths and harness invariant checks, both
  // caller-driven); trace_events() marshals the shard-ring reads.
  tracer_.set_dump_renderer([this](uint64_t id, const std::string& reason) {
    return core::render_flight_dump(trace_events(), id, reason,
                                    metrics_.to_text());
  });
}

// Same naming scheme as EmulatedCluster::register_gauges so dashboards
// and baselines read identically off either harness. Per-node counters
// are plain fields owned by shard threads, so their gauges marshal the
// reads through on_node_shard; transport/driver/pool counters are
// relaxed atomics and read directly.
void TcpCluster::register_gauges() {
  metrics_.gauge_fn("frontend.completed", [this] {
    uint64_t n = 0;
    for (const auto& fe : frontends_) n += fe->queries_completed();
    return static_cast<double>(n);
  });
  metrics_.gauge_fn("frontend.failures_detected", [this] {
    uint64_t n = 0;
    for (const auto& fe : frontends_) n += fe->failures_detected();
    return static_cast<double>(n);
  });
  metrics_.gauge_fn("frontend.shed", [this] {
    uint64_t n = 0;
    for (const auto& fe : frontends_) n += fe->shed_count();
    return static_cast<double>(n);
  });
  metrics_.gauge_fn("frontend.parts_shed", [this] {
    uint64_t n = 0;
    for (const auto& fe : frontends_) n += fe->parts_shed();
    return static_cast<double>(n);
  });
  metrics_.gauge_fn("frontend.queue_hwm", [this] {
    size_t m = 0;
    for (const auto& fe : frontends_) m = std::max(m, fe->queue_hwm());
    return static_cast<double>(m);
  });
  metrics_.gauge_fn("node.subqueries", [this] {
    uint64_t n = 0;
    for (NodeId id = 0; id < nodes_.size(); ++id) {
      on_node_shard(id, [&] { n += nodes_[id]->subqueries_served(); });
    }
    return static_cast<double>(n);
  });
  metrics_.gauge_fn("node.updates_applied", [this] {
    uint64_t n = 0;
    for (NodeId id = 0; id < nodes_.size(); ++id) {
      on_node_shard(id, [&] { n += nodes_[id]->updates_applied(); });
    }
    return static_cast<double>(n);
  });
  metrics_.gauge_fn("node.shed", [this] {
    uint64_t n = 0;
    for (NodeId id = 0; id < nodes_.size(); ++id) {
      on_node_shard(id, [&] { n += nodes_[id]->subs_shed(); });
    }
    return static_cast<double>(n);
  });
  metrics_.gauge_fn("node.exec_queue_hwm", [this] {
    size_t m = 0;
    for (NodeId id = 0; id < nodes_.size(); ++id) {
      on_node_shard(id,
                    [&] { m = std::max(m, nodes_[id]->exec_queue_hwm()); });
    }
    return static_cast<double>(m);
  });
  metrics_.gauge_fn("net.messages_sent", [this] {
    return static_cast<double>(messages_sent());
  });
  metrics_.gauge_fn("net.messages_dropped", [this] {
    return static_cast<double>(messages_dropped());
  });
  metrics_.gauge_fn("net.bytes_sent", [this] {
    return static_cast<double>(bytes_sent());
  });
  driver_.register_metrics(metrics_, "driver");
  metrics_.gauge_fn("pool.tasks_executed", [this] {
    return static_cast<double>(pool_tasks_executed());
  });
  metrics_.gauge_fn("pool.tasks_stolen", [this] {
    return static_cast<double>(pool_tasks_stolen());
  });
  metrics_.gauge_fn("pool.ring_full_events", [this] {
    return static_cast<double>(pool_ring_full_events());
  });
  metrics_.gauge_fn("pool.express_submits", [this] {
    return static_cast<double>(pool_express_submits());
  });
  metrics_.gauge_fn("control.epoch", [this] {
    return static_cast<double>(control_->epoch());
  });
  metrics_.gauge_fn("control.epoch_lag", [this] {
    return static_cast<double>(control_->max_epoch_lag());
  });
  metrics_.gauge_fn("control.p_changes_committed", [this] {
    return static_cast<double>(control_->p_changes_committed());
  });
  metrics_.gauge_fn("control.deltas_sent", [this] {
    return static_cast<double>(control_->deltas_sent());
  });
  metrics_.gauge_fn("control.interest_filtered_sends", [this] {
    return static_cast<double>(control_->interest_skips());
  });
  metrics_.gauge_fn("control.acks_aggregated", [this] {
    return static_cast<double>(control_->acks_aggregated());
  });
  metrics_.gauge_fn("control.compaction_ratio", [this] {
    return control_->compaction_ratio();
  });
  metrics_.gauge_fn("control.delta_log_retain", [this] {
    return static_cast<double>(control_->delta_log_retain());
  });
  metrics_.gauge_fn("control.tree_rebuilds", [this] {
    return static_cast<double>(control_->tree_rebuilds());
  });
  metrics_.gauge_fn("control.deltas_relayed", [this] {
    uint64_t n = 0;
    for (NodeId id = 0; id < nodes_.size(); ++id) {
      on_node_shard(id, [&] { n += nodes_[id]->deltas_relayed(); });
    }
    return static_cast<double>(n);
  });
  metrics_.gauge_fn("control.node_acks_aggregated", [this] {
    uint64_t n = 0;
    for (NodeId id = 0; id < nodes_.size(); ++id) {
      on_node_shard(id, [&] { n += nodes_[id]->acks_aggregated(); });
    }
    return static_cast<double>(n);
  });
  metrics_.gauge_fn("control.interests_registered", [this] {
    uint64_t n = 0;
    for (NodeId id = 0; id < nodes_.size(); ++id) {
      on_node_shard(id, [&] { n += nodes_[id]->interests_sent(); });
    }
    return static_cast<double>(n);
  });
  metrics_.gauge_fn("trace.events", [this] {
    return static_cast<double>(tracer_.events_recorded());
  });
  metrics_.gauge_fn("trace.anomalies", [this] {
    return static_cast<double>(tracer_.anomalies_seen());
  });
  if (ingest_router_) {
    IngestRouter* r = ingest_router_.get();
    metrics_.gauge_fn("ingest.ops_accepted", [r] {
      return static_cast<double>(r->ops_accepted());
    });
    metrics_.gauge_fn("ingest.updates_sent", [r] {
      return static_cast<double>(r->updates_sent());
    });
    metrics_.gauge_fn("ingest.retransmits", [r] {
      return static_cast<double>(r->retransmits());
    });
    metrics_.gauge_fn("ingest.loss_events", [r] {
      return static_cast<double>(r->loss_events());
    });
    metrics_.gauge_fn("ingest.flow_abandoned", [r] {
      return static_cast<double>(r->flow_abandoned());
    });
    metrics_.gauge_fn("ingest.syncs_served", [r] {
      return static_cast<double>(r->syncs_served());
    });
    metrics_.gauge_fn("ingest.sync_chunks_sent", [r] {
      return static_cast<double>(r->sync_chunks_sent());
    });
    metrics_.gauge_fn("ingest.full_segments_sent", [r] {
      return static_cast<double>(r->full_segments_sent());
    });
    metrics_.gauge_fn("ingest.ops_applied", [this] {
      uint64_t n = 0;
      for (NodeId id = 0; id < nodes_.size(); ++id) {
        on_node_shard(id, [&] {
          if (nodes_[id]->ingest()) n += nodes_[id]->ingest()->ops_applied();
        });
      }
      return static_cast<double>(n);
    });
  }
}

std::vector<core::TraceEvent> TcpCluster::trace_events() const {
  std::vector<core::TraceEvent> all;
  auto& driver = const_cast<net::TcpDriver&>(driver_);
  for (size_t s = 0; s < tracer_.shards(); ++s) {
    // Each ring is read on its owning loop thread (inline for shard 0).
    driver.run_on(s, [&] {
      auto evs = tracer_.events(s);
      all.insert(all.end(), evs.begin(), evs.end());
    });
  }
  std::sort(all.begin(), all.end(),
            [](const core::TraceEvent& a, const core::TraceEvent& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.trace_id != b.trace_id) return a.trace_id < b.trace_id;
              if (a.stage != b.stage) return a.stage < b.stage;
              if (a.actor != b.actor) return a.actor < b.actor;
              return a.part < b.part;
            });
  return all;
}

TcpCluster::~TcpCluster() {
  // Join the shard threads before any member (nodes, transports, pools)
  // destructs: a live shard loop may be mid-handler inside a node.
  driver_.stop();
}

void TcpCluster::on_node_shard(NodeId id,
                               const std::function<void()>& fn) const {
  // run_on mutates the target shard's mailbox; logically const here.
  auto& driver = const_cast<net::TcpDriver&>(driver_);
  driver.run_on(node_shards_.at(id), fn);
}

uint16_t TcpCluster::node_port(NodeId id) const {
  return transports_.at(id + 1)->port();
}

void TcpCluster::publish_view() {
  // Same rule as EmulatedCluster::publish_view: the broadcast covers
  // everyone; laggards are the retransmit tick's job.
  control_->publish();
}

void TcpCluster::kill_node(NodeId id) {
  on_node_shard(id, [&] { nodes_.at(id)->kill(); });
  membership_.fail(id);
}

void TcpCluster::revive_node(NodeId id) {
  NodeRuntime& node = *nodes_.at(id);
  bool alive = false;
  on_node_shard(id, [&] { alive = node.alive(); });
  if (alive) return;
  // pulls the current view over the socket
  on_node_shard(id, [&] { node.start(); });
  membership_.revive(id);
  publish_view();
  // The crash never bumped the epoch; force a full resync so the
  // front-ends' mirrors resurrect the node's liveness (same choreography
  // as the emulated harness).
  control_->resync(/*everyone=*/true);
}

void TcpCluster::change_p(uint32_t p_new) {
  control_->order_p_change(p_new);
}

uint64_t TcpCluster::submit_query(const QueryRequest& req,
                                  Frontend::QueryCallback cb) {
  return pick_ready_frontend(frontends_, next_frontend_)
      .submit(req, std::move(cb));
}

QueryOutcome TcpCluster::run_query(double timeout_s) {
  // Shared state, not stack references: on timeout the query stays
  // pending inside the Frontend and its callback may still fire during a
  // later poll, after this frame is gone.
  auto out = std::make_shared<QueryOutcome>();
  auto done = std::make_shared<bool>(false);
  Frontend& fe = pick_ready_frontend(frontends_, next_frontend_);
  fe.submit([out, done](const QueryOutcome& o) {
    *out = o;
    *done = true;
  });
  driver_.run_until([&] { return *done; }, timeout_s);
  return *out;  // id == 0 if the query never completed
}

std::vector<QueryOutcome> TcpCluster::run_queries(uint32_t count,
                                                  double per_query_timeout_s) {
  std::vector<QueryOutcome> outs;
  outs.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    outs.push_back(run_query(per_query_timeout_s));
  }
  return outs;
}

void TcpCluster::run_for(double duration_s) {
  double until = driver_.clock().now() + duration_s;
  while (driver_.clock().now() < until) driver_.poll(5);
}

uint64_t TcpCluster::messages_sent() const {
  uint64_t total = 0;
  for (const auto& t : transports_) total += t->messages_sent();
  return total;
}

uint64_t TcpCluster::bytes_sent() const {
  uint64_t total = 0;
  for (const auto& t : transports_) total += t->bytes_sent();
  return total;
}

uint64_t TcpCluster::messages_dropped() const {
  uint64_t total = 0;
  for (const auto& t : transports_) total += t->messages_dropped();
  return total;
}

std::vector<IngestReplicaView> TcpCluster::ingest_replicas() const {
  // Snapshot each node's replica view on its own shard thread (inline
  // with one shard), so versioned-store state is never read concurrently
  // with its owner.
  std::vector<IngestReplicaView> out;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    on_node_shard(id, [&] {
      auto one = collect_ingest_replicas({&nodes_[id], 1});
      out.insert(out.end(), one.begin(), one.end());
    });
  }
  return out;
}

bool TcpCluster::ingest_converged() const {
  if (!ingest_router_) return true;
  auto reps = ingest_replicas();
  return ingest_convergence_report(*ingest_router_, reps,
                                   /*probe_matches=*/false)
      .empty();
}

bool TcpCluster::run_until_ingest_converged(double timeout_s) {
  double until = driver_.clock().now() + timeout_s;
  // Poll before the first verdict so pending range pushes land (a
  // revived node is invisible to the replica set until they do).
  do {
    driver_.poll(5);
  } while (!ingest_converged() && driver_.clock().now() < until);
  return ingest_converged();
}

uint64_t TcpCluster::batches_drained() const {
  uint64_t total = 0;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    on_node_shard(id, [&] { total += nodes_[id]->batches_drained(); });
  }
  return total;
}

uint64_t TcpCluster::batched_subqueries() const {
  uint64_t total = 0;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    on_node_shard(id, [&] { total += nodes_[id]->batched_subqueries(); });
  }
  return total;
}

uint64_t TcpCluster::pool_tasks_executed() const {
  uint64_t total = 0;
  for (const auto& p : pools_) total += p->executed();
  return total;
}

uint64_t TcpCluster::pool_tasks_stolen() const {
  uint64_t total = 0;
  for (const auto& p : pools_) total += p->stolen();
  return total;
}

uint64_t TcpCluster::pool_ring_full_events() const {
  uint64_t total = 0;
  for (const auto& p : pools_) total += p->ring_full_events();
  return total;
}

uint64_t TcpCluster::pool_express_submits() const {
  uint64_t total = 0;
  for (const auto& p : pools_) total += p->express_submits();
  return total;
}

}  // namespace roar::cluster
