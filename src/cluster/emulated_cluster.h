// The emulated ROAR deployment: N node runtimes + F front-ends + the
// control plane glued over the in-process network on one virtual-time
// event loop.
//
// This is the Chapter 7 substrate: the same control-plane code paths a
// physical deployment runs (joins, view-epoch broadcasts, reconfiguration
// fetch duties and confirmations, failure detection by timeout, §4.4
// splits), with node matching rates taken from the PPS measurements. See
// DESIGN.md for the substitution argument.
//
// Control state flows exclusively through the epoch-versioned ClusterView
// (core/cluster_view.h): the harness mutates the membership server, then
// calls publish_view(); the ControlPlane diffs, broadcasts, and every
// front-end and node converges through the delta/ack/pull protocol —
// identical over InProc virtual time and the TCP transport.
#pragma once

#include <memory>
#include <set>
#include <vector>

#include "cluster/control.h"
#include "cluster/frontend.h"
#include "cluster/node.h"
#include "common/metrics.h"
#include "core/membership.h"
#include "core/tracer.h"
#include "net/fault_transport.h"
#include "net/inproc.h"
#include "sim/farm.h"

namespace roar::cluster {

struct ClusterConfig {
  std::vector<sim::ServerClass> classes = sim::hen_testbed();
  uint64_t dataset_size = 5'000'000;  // metadata (the paper's 5M headline)
  uint32_t p = 8;
  // Front-end instances (§4.8/§4.9 scale-out). Each has its own address,
  // scheduler RNG stream and EWMA estimator state.
  uint32_t frontends = 1;
  FrontendParams frontend;  // p is overwritten from the field above
  NodeParams node_proto;    // id/speed overwritten per node
  double latency_s = 100e-6;
  uint64_t seed = 1;
  // Membership balance iterations at startup (ranges ∝ speed).
  uint32_t initial_balance_steps = 800;
  // When set, the whole cluster runs over a seeded FaultTransport
  // decorating the InProcNetwork; default_faults seeds its baseline
  // per-link model (partitions etc. are scripted later via faults()).
  bool enable_faults = false;
  net::FaultSpec default_faults{};
  // Live ingestion: builds one shared MatchEngine (real corpus), gives
  // every node an IngestLog + versioned store (with modeled timing, so
  // virtual-time traces stay host-independent) and attaches an
  // IngestRouter to the front-end at kUpdateServerAddr. Off by default:
  // without it the cluster is byte-identical with the pre-ingest code.
  bool enable_ingest = false;
  MatchEngineConfig engine{};
  IngestConfig ingest{};
  // Closed-loop p control: the ControlPlane ticks an AdaptivePController
  // fed by node load reports and front-end latency digests. Enabling it
  // defaults stats_interval_s / digest_interval_s to 1 s if unset.
  bool adaptive_p = false;
  core::AdaptivePParams adaptive{};
  double adaptive_interval_s = 4.0;
  // Laggard-resync cadence of the control plane.
  double control_retransmit_s = 0.5;
  // Dissemination-tree fanout k (control-plane roots and interior relay
  // nodes) and the tree/sliced decision divisor: waves interesting at
  // least node_count/tree_divisor subscribers go through the relay tree,
  // smaller ones are sent directly to the interested slice.
  uint32_t relay_fanout = 8;
  uint32_t tree_divisor = 4;
  // Overload control (core/slo.h): per-class contracts feeding frontend
  // admission/shedding, Spang-sized queue bounds on frontends and nodes,
  // and (with adaptive_p) the controller's p99 target — all from this one
  // spec. Caps left 0 are derived from the cluster's capacity; see
  // rated_capacity_qps().
  core::SloSpec slo;
};

class EmulatedCluster {
 public:
  explicit EmulatedCluster(ClusterConfig config);

  net::EventLoop& loop() { return loop_; }
  net::InProcNetwork& network() { return net_; }
  // The transport every component is wired to: the fault layer when
  // enabled, otherwise the bare in-process network.
  net::Transport& transport() {
    return faults_ ? static_cast<net::Transport&>(*faults_) : net_;
  }
  // The fault-injection layer, or nullptr when enable_faults is unset.
  net::FaultTransport* faults() { return faults_.get(); }
  ControlPlane& control() { return *control_; }
  const ControlPlane& control() const { return *control_; }
  Frontend& frontend() { return *frontends_.front(); }  // instance 0
  Frontend& frontend(uint32_t i) { return *frontends_.at(i); }
  const Frontend& frontend(uint32_t i) const { return *frontends_.at(i); }
  uint32_t frontend_count() const {
    return static_cast<uint32_t>(frontends_.size());
  }
  core::MembershipServer& membership() { return membership_; }
  // The ingest router, or nullptr when enable_ingest is unset.
  IngestRouter* ingest() { return ingest_router_.get(); }
  const IngestRouter* ingest() const { return ingest_router_.get(); }
  // The shared matching engine, or nullptr without ingestion.
  const MatchEngine* engine() const { return engine_.get(); }

  size_t node_count() const { return nodes_.size(); }
  NodeRuntime& node(NodeId id) { return *nodes_.at(id); }
  std::vector<NodeId> node_ids() const;

  // --- observability ------------------------------------------------------
  // The unified metrics plane: every component's counters exposed through
  // one registry (lazy gauges evaluated at snapshot), plus the hot-path
  // latency/service histograms the frontends and nodes feed directly.
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  // The cluster tracer (one virtual-time ring; the whole harness is
  // single-threaded, so ring reads are always safe here).
  core::Tracer& tracer() { return tracer_; }
  const core::Tracer& tracer() const { return tracer_; }
  // Merged, time-sorted trace events from every component.
  std::vector<core::TraceEvent> trace_events() const {
    return tracer_.collect();
  }

  // Publishes the current membership + reconfiguration state as a new
  // view epoch (no-op when nothing changed). Laggards converge through
  // the control plane's retransmit tick; the heal and revive paths call
  // control().resync() explicitly for promptness. Called automatically
  // after membership events.
  void publish_view();

  // --- membership operations -------------------------------------------
  // Joins a fresh node; it downloads its data for `warmup` simulated
  // seconds (derived from range size and fetch bandwidth) before serving.
  NodeId add_node(double speed);
  // Crash-stops a node: it silently vanishes; the front-ends must
  // discover it by timeout (no view is published for a crash).
  void kill_node(NodeId id);
  // Restarts a crashed node in place: it rebinds, pulls the current view
  // (resuming any §4.5 duty it lost) and resumes its old range
  // (membership history, §4.9).
  void revive_node(NodeId id);
  // Graceful departure: the node stops serving, neighbours absorb its
  // range, and the front-ends forget it with the next view epoch.
  void leave_node(NodeId id);
  // Background range balancing round (§4.6); returns range fraction moved.
  double balance_round();
  // Long-term failure handling (§4.9): drop crashed nodes from the ring so
  // their ranges merge into live successors, and publish. Returns the
  // number of nodes removed.
  uint32_t remove_dead_nodes();

  // --- front-end lifecycle (§4.8 scale-out) ------------------------------
  // Crash-stops front-end `i`: its pending queries fail, its address
  // unbinds, and the control plane stops waiting on its acks.
  void kill_frontend(uint32_t i);
  // Restarts it; it pulls the current view and refuses queries until the
  // view applies.
  void revive_frontend(uint32_t i);

  // --- reconfiguration (§4.5) -------------------------------------------
  void change_p(uint32_t p_new);
  uint32_t safe_p() const { return control_->safe_p(); }
  uint32_t target_p() const { return control_->target_p(); }

  // --- workload -----------------------------------------------------------
  // Open-loop Poisson queries, round-robined over the front-ends; runs
  // the loop until all complete or `give_up_s` of virtual time passes.
  // Returns completed count.
  uint32_t run_queries(double rate_per_s, uint32_t count,
                       double give_up_s = 600.0);
  // Submits one query on the next front-end (round-robin).
  uint64_t submit_query(Frontend::QueryCallback cb);
  // Classed submission (the workload engine's entry point).
  uint64_t submit_query(const QueryRequest& req, Frontend::QueryCallback cb);
  // Object updates at Poisson rate for `duration_s` (§7.3.4); each update
  // goes to every node storing the object's arc. Legacy modeled-cost
  // stream — real mutation goes through ingest_stream / the router.
  void inject_updates(double rate_per_s, double duration_s);

  // --- live ingestion ------------------------------------------------------
  // Schedules `count` real index mutations at Poisson rate: a mix of
  // document adds (deterministic synthetic docs) and deletes of earlier
  // adds. Requires enable_ingest. Ops route through the IngestRouter like
  // any client's would.
  void ingest_stream(double rate_per_s, uint32_t count,
                     double delete_frac = 0.2);
  // Current replica views (live nodes with ranges), for the convergence
  // and safety reports.
  std::vector<IngestReplicaView> ingest_replicas() const;
  // True when every replica of every shard has caught up with the router.
  bool ingest_converged() const;
  // Runs the loop until ingest_converged() or `timeout_s` virtual seconds
  // elapse; returns the converged verdict.
  bool run_until_ingest_converged(double timeout_s = 60.0);

  // --- metrics -------------------------------------------------------------
  double now() const { return loop_.now(); }
  // Analytic saturation throughput: aggregate matching rate over the
  // per-query scan work. The workload engine and bench_overload express
  // offered load as multiples of this; the SLO cap derivation uses it.
  double rated_capacity_qps() const;
  // Aggregate overload-control counters across frontends / nodes.
  uint64_t admission_shed_total() const;
  uint64_t node_shed_total() const;
  std::vector<double> node_busy_fractions() const;
  // Energy over the elapsed virtual time with a linear power model.
  double energy_joules(double idle_w = 200.0, double peak_w = 285.0) const;
  // Instance-0 delays, for the single-front-end experiments.
  const SampleSet& delays() const { return frontends_.front()->delays(); }

 private:
  void make_node(NodeId id, double speed);
  void schedule_warmup_push(NodeId id);
  void register_gauges();

  ClusterConfig config_;
  net::EventLoop loop_;
  net::InProcNetwork net_;
  // Observability plane. Declared before the components that record into
  // it, so it is destroyed after them.
  MetricsRegistry metrics_;
  core::Tracer tracer_;
  std::unique_ptr<net::FaultTransport> faults_;
  core::MembershipServer membership_;
  std::unique_ptr<ControlPlane> control_;
  std::vector<std::unique_ptr<Frontend>> frontends_;
  std::shared_ptr<const MatchEngine> engine_;
  std::unique_ptr<IngestRouter> ingest_router_;
  std::vector<std::unique_ptr<NodeRuntime>> nodes_;
  Rng rng_;
  uint32_t next_frontend_ = 0;  // round-robin submit cursor
  double measure_start_ = 0.0;
};

}  // namespace roar::cluster
