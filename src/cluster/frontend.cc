#include "cluster/frontend.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "common/logging.h"

namespace roar::cluster {

uint64_t frontend_seed(uint64_t cluster_seed, uint32_t index) {
  uint64_t base = subseed(cluster_seed, SeedStream::kFrontend);
  return index == 0 ? base : subseed(base, static_cast<uint64_t>(index));
}

Frontend& pick_ready_frontend(
    const std::vector<std::unique_ptr<Frontend>>& frontends,
    uint32_t& cursor) {
  size_t f = frontends.size();
  for (size_t k = 0; k < f; ++k) {
    size_t cand = (cursor + k) % f;
    if (frontends[cand]->ready()) {
      cursor = static_cast<uint32_t>((cand + 1) % f);
      return *frontends[cand];
    }
  }
  Frontend& fe = *frontends[cursor % f];
  cursor = static_cast<uint32_t>((cursor + 1) % f);
  return fe;
}

// Finish estimator over the front-end's EWMA rates and queue projections.
class Frontend::Estimator : public core::FinishEstimator {
 public:
  explicit Estimator(const Frontend& fe) : fe_(fe) {}
  double estimate_finish(core::NodeId node, double share) const override {
    return fe_.predict(node, share);
  }

 private:
  const Frontend& fe_;
};

Frontend::Frontend(net::Transport& net, uint32_t index,
                   FrontendParams params, uint64_t dataset_size,
                   uint64_t seed)
    : net_(net),
      index_(index),
      params_(params),
      dataset_size_(dataset_size),
      rng_(seed) {
  if (index >= kMaxFrontends) {
    throw std::out_of_range("Frontend: index collides with node addresses");
  }
  if (params_.slo_enabled) {
    admission_ =
        std::make_unique<core::AdmissionController>(params_.admission);
  }
}

void Frontend::start() {
  alive_ = true;
  synced_ = false;
  ++life_;
  net_.bind(address(), [this](net::Address from, net::Payload payload) {
    handle(from, payload);
  });
  if (view_epoch() > 0) {
    // Restart after a crash: our view is stale by an unknown number of
    // epochs. Pull before serving (ready() stays false until the first
    // applied view of this life... the pull's full-snapshot reply).
    ViewPullMsg pull;
    pull.subscriber = address();
    pull.have_epoch = view_epoch();
    net_.send(address(), kMembershipAddr, pull.encode());
  }
  if (params_.digest_interval_s > 0) {
    uint64_t life = life_;
    net_.clock().schedule_after(params_.digest_interval_s,
                                [this, life] { send_digest(life); });
  }
}

void Frontend::stop() {
  if (!alive_) return;
  alive_ = false;
  ++life_;  // kills digest/timeout timer chains from this life
  // Pre-crash completions must not surface as a fresh latency digest
  // after a revival — the controller would read minutes-old overload as
  // a current contract breach.
  digest_window_.clear();
  net_.unbind(address());
  // In-flight queries die with the process; their clients observe the
  // loss as a failed, zero-harvest outcome.
  std::vector<uint64_t> ids;
  for (const auto& [id, q] : pending_) ids.push_back(id);
  for (uint64_t id : ids) fail_query(id);
}

void Frontend::trace_event(uint64_t trace, core::TraceStage stage,
                           uint32_t part, double dur, uint32_t aux) {
  if (!tracer_) return;
  tracer_->record(trace_shard_, trace, stage, index_, part,
                  net_.clock().now(), dur, aux);
}

void Frontend::fail_query(uint64_t id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;
  PendingQuery& q = it->second;
  for (const auto& part : q.parts) {
    if (!part.done) net_.clock().cancel(part.timer_id);
  }
  trace_event(q.trace, core::TraceStage::kQueryFail);
  QueryOutcome out;
  out.id = id;
  out.complete = false;
  out.harvest = 0.0;
  out.klass = q.klass;
  out.trace = q.trace;
  auto cb = std::move(q.cb);
  pending_.erase(it);
  if (cb) cb(out);
}

void Frontend::sync_from_view() {
  const core::ClusterView& v = sub_.view();
  ring_ = v.to_ring();
  double now = net_.clock().now();
  for (const auto& n : ring_.nodes()) {
    auto& st = nodes_[n.id];
    st.alive = n.alive;
    if (!st.rate.has_value()) {
      st.rate = Ewma(params_.ewma_alpha);
      st.rate.add(params_.initial_rate * n.speed);
      st.busy_until = now;
    }
  }
  // Members removed from the view release their estimator state.
  for (auto it = nodes_.begin(); it != nodes_.end();) {
    if (!ring_.contains(it->first)) {
      it = nodes_.erase(it);
    } else {
      ++it;
    }
  }
}

void Frontend::send_ack(net::Address to) {
  // Plain watermark: completed == 0 keeps it out of the latency signal.
  ViewAckMsg ack;
  ack.subscriber = address();
  ack.epoch = view_epoch();
  net_.send(address(), to, ack.encode());
}

void Frontend::send_digest(uint64_t life) {
  if (life != life_ || !alive_) return;
  ViewAckMsg ack;
  ack.subscriber = address();
  ack.epoch = view_epoch();
  if (!digest_window_.empty()) {
    ack.completed = digest_window_.count();
    ack.p99_s = digest_window_.percentile(0.99);
    ack.mean_s = digest_window_.mean();
  }
  digest_window_.clear();
  net_.send(address(), kMembershipAddr, ack.encode());
  net_.clock().schedule_after(params_.digest_interval_s,
                              [this, life] { send_digest(life); });
}

void Frontend::on_view_delta(const ViewDeltaMsg& m) {
  switch (sub_.apply(m.delta)) {
    case core::ViewSubscription::Apply::kApplied:
      synced_ = true;
      sync_from_view();
      send_ack(m.ack_to);
      break;
    case core::ViewSubscription::Apply::kStale:
      send_ack(m.ack_to);  // refresh the control plane's watermark anyway
      break;
    case core::ViewSubscription::Apply::kGap: {
      ViewPullMsg pull;
      pull.subscriber = address();
      pull.have_epoch = view_epoch();
      net_.send(address(), kMembershipAddr, pull.encode());
      break;
    }
  }
}

void Frontend::node_down(NodeId id) {
  if (ring_.contains(id)) ring_.set_alive(id, false);
  nodes_[id].alive = false;
}

RingId Frontend::add_document(const pps::FileInfo& doc) {
  if (!ingest_) {
    throw std::logic_error("Frontend::add_document: no ingest router");
  }
  return ingest_->add_document(doc);
}

bool Frontend::delete_document(RingId doc_id) {
  if (!ingest_) {
    throw std::logic_error("Frontend::delete_document: no ingest router");
  }
  return ingest_->delete_document(doc_id);
}

double Frontend::estimated_rate(NodeId id) const {
  auto it = nodes_.find(id);
  return it != nodes_.end() && it->second.rate.has_value()
             ? it->second.rate.value()
             : params_.initial_rate;
}

double Frontend::predict(NodeId node, double share) const {
  double now = net_.clock().now();
  auto it = nodes_.find(node);
  double busy = now, rate = params_.initial_rate;
  if (it != nodes_.end()) {
    busy = std::max(now, it->second.busy_until);
    if (it->second.rate.has_value()) rate = it->second.rate.value();
  }
  double count = share * static_cast<double>(dataset_size_);
  return busy + count / rate + params_.subquery_overhead_s +
         2 * net_.latency();
}

uint64_t Frontend::submit(QueryCallback cb) {
  return submit(QueryRequest{}, std::move(cb));
}

uint64_t Frontend::submit(const QueryRequest& req, QueryCallback cb) {
  uint64_t id = next_query_id_++;
  uint64_t trace = core::query_trace_id(index_, id);
  TraceIdScope log_scope(trace);
  if (!ready() || ring_.empty()) {
    // No view yet (fresh or just-revived front-end) or nothing to plan
    // against: refuse rather than guess — planning off a stale view is
    // exactly what the ready gate exists to prevent.
    trace_event(trace, core::TraceStage::kQueryFail);
    QueryOutcome out;
    out.id = id;
    out.complete = false;
    out.harvest = 0.0;
    out.klass = req.klass;
    out.trace = trace;
    if (cb) cb(out);
    return id;
  }
  // Admission runs BEFORE the sweep/planner: a shed query costs one
  // occupancy comparison, not a schedule. The refusal is the contract's
  // max_shed budget being spent to keep admitted queries inside their p99.
  if (admission_ && !admission_->admit(req.klass, pending_.size())) {
    trace_event(trace, core::TraceStage::kAdmitShed);
    QueryOutcome out;
    out.id = id;
    out.complete = false;
    out.harvest = 0.0;
    out.klass = req.klass;
    out.shed = true;
    out.trace = trace;
    if (cb) cb(out);
    return id;
  }
  PendingQuery q;
  q.id = id;
  q.trace = trace;
  q.submit_time = net_.clock().now();
  trace_event(trace, core::TraceStage::kSubmit);
  q.klass = req.klass;
  q.extra_cost_s = req.extra_cost_s;
  q.cb = std::move(cb);

  // The scheduling computation itself is measured in wall-clock time: this
  // is the Fig 7.12 quantity (it is real CPU work the front-end does).
  auto wall0 = std::chrono::steady_clock::now();
  Estimator est(*this);
  uint32_t p = safe_p();
  uint32_t pq = std::max(
      p, static_cast<uint32_t>(p * params_.pq_factor + 0.5));
  if (params_.slo_enabled && req.klass != core::QueryClass::kInteractive) {
    // Contract-fed scheduling: only the tight-latency class fans out wider
    // than p. Batch/scavenger latitude is the contract's, not the
    // scheduler's.
    pq = p;
  }
  auto sched =
      core::SweepScheduler::schedule(ring_, pq, est, rng_.next_ring_id());
  auto plan = planner_.plan(ring_, sched.best_start, pq, p, rng_);
  if (params_.range_adjustment) {
    core::adjust_ranges(&plan, ring_, p, est);
  }
  if (params_.max_splits > 0) {
    core::split_slowest(&plan, ring_, p, est, params_.max_splits);
  }
  q.schedule_wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  schedule_times_.add(q.schedule_wall_s);
  trace_event(trace, core::TraceStage::kPlanned, 0, q.schedule_wall_s);

  auto [it, inserted] = pending_.emplace(id, std::move(q));
  queue_hwm_ = std::max(queue_hwm_, pending_.size());
  PendingQuery& stored = it->second;
  for (const auto& part : plan.parts) {
    if (part.node == core::kInvalidNode) {
      stored.full_coverage = false;  // harvest < 100%
      stored.missing_share += part.share;
      continue;
    }
    send_part(stored, part);
  }
  if (stored.outstanding == 0) {
    // Nothing could be sent (e.g. all nodes dead): fail immediately.
    trace_event(trace, core::TraceStage::kQueryFail);
    QueryOutcome out;
    out.id = id;
    out.complete = false;
    out.klass = stored.klass;
    out.trace = trace;
    auto cb2 = std::move(stored.cb);
    pending_.erase(id);
    if (cb2) cb2(out);
  }
  return id;
}

void Frontend::send_part(PendingQuery& q, const core::RoarSubQuery& sub) {
  PendingPart part;
  part.sub = sub;
  part.node = sub.node;

  SubQueryMsg msg;
  msg.query_id = q.id;
  msg.part_id = static_cast<uint32_t>(q.parts.size());
  msg.trace = q.trace;
  msg.point = sub.point;
  msg.window_begin = sub.window_begin;
  msg.window_end = sub.responsibility_end;
  msg.pq = safe_p();
  msg.share = sub.share;
  msg.klass = static_cast<uint8_t>(q.klass);

  // Update the queue projection for this node.
  double predicted = predict(sub.node, sub.share);
  auto& st = nodes_[sub.node];
  st.busy_until = predicted - 2 * net_.latency();

  double timeout = (predicted - net_.clock().now()) * params_.timeout_factor +
                   params_.timeout_margin_s;
  uint64_t qid = q.id;
  uint32_t pidx = static_cast<uint32_t>(q.parts.size());
  part.timer_id = net_.clock().schedule_after(
      timeout, [this, qid, pidx] { on_timeout(qid, pidx); });

  q.parts.push_back(part);
  ++q.outstanding;
  trace_event(q.trace, core::TraceStage::kDispatch, pidx, 0.0, sub.node);
  net_.send(address(), node_address(sub.node), msg.encode());
}

void Frontend::handle(net::Address from, net::ByteView payload) {
  (void)from;
  auto type = peek_type(payload);
  if (!type) return;
  if (*type == MsgType::kSubQueryReply) {
    if (auto m = SubQueryReplyMsg::decode(payload)) on_reply(*m);
  } else if (*type == MsgType::kViewDelta) {
    if (auto m = ViewDeltaMsg::decode(payload)) on_view_delta(*m);
  }
}

void Frontend::on_reply(const SubQueryReplyMsg& m) {
  auto it = pending_.find(m.query_id);
  if (it == pending_.end()) return;  // late reply after query completion
  PendingQuery& q = it->second;
  if (m.part_id >= q.parts.size()) return;
  PendingPart& part = q.parts[m.part_id];

  // Liveness is "last time seen up" (§4.8): any reply — including a late
  // one from a node whose timer already fired — proves the node is alive,
  // merely overloaded. Without this resurrection, false timeouts under
  // transient overload would progressively erase the ring.
  auto& replier = nodes_[part.node];
  if (!replier.alive) {
    replier.alive = true;
    if (ring_.contains(part.node)) ring_.set_alive(part.node, true);
  }

  if (part.done) return;  // duplicate or post-timeout reply
  part.done = true;
  net_.clock().cancel(part.timer_id);
  --q.outstanding;
  TraceIdScope log_scope(q.trace);
  trace_event(q.trace, core::TraceStage::kReplyRecv, m.part_id, m.service_s,
              m.shed);

  if (m.shed) {
    // The node refused this sub-query at its queue bound. Its window goes
    // unsearched — a harvest loss identical in kind to a §4.4 abandoned
    // window — but the query finishes NOW instead of waiting out a
    // timeout, and the node stays alive in the mirror (the reply proved
    // it). No rate observation: a refusal says nothing about speed.
    ++q.parts_shed;
    ++parts_shed_;
    q.full_coverage = false;
    q.missing_share += part.sub.share;
    finish_if_done(q);
    return;
  }

  q.matches += m.matches;
  q.max_service = std::max(q.max_service, m.service_s);

  // Speed estimation (§4.8): observed rate from this sub-query.
  if (m.service_s > params_.subquery_overhead_s && m.scanned > 0) {
    double rate = static_cast<double>(m.scanned) /
                  (m.service_s - params_.subquery_overhead_s / 2);
    nodes_[part.node].rate.add(rate);
  }
  finish_if_done(q);
}

void Frontend::on_timeout(uint64_t query_id, uint32_t part_index) {
  auto it = pending_.find(query_id);
  if (it == pending_.end()) return;
  PendingQuery& q = it->second;
  if (part_index >= q.parts.size()) return;
  PendingPart& part = q.parts[part_index];
  if (part.done) return;

  TraceIdScope log_scope(q.trace);
  if (part.expiries == 0) {
    // Second chance: re-arm from the *current* queue projection — if the
    // node is alive but swamped (e.g. absorbing a mass failure's load),
    // the refreshed prediction reflects the backlog and the timer now
    // covers it.
    part.expiries = 1;
    trace_event(q.trace, core::TraceStage::kPartTimeout, part_index);
    double predicted = predict(part.node, part.sub.share);
    double timeout =
        (predicted - net_.clock().now()) * params_.timeout_factor +
        params_.timeout_margin_s;
    part.timer_id = net_.clock().schedule_after(
        std::max(timeout, params_.timeout_margin_s),
        [this, query_id, part_index] { on_timeout(query_id, part_index); });
    return;
  }

  // Node considered dead (§4.8: "if a query response times out, the node
  // is marked as dead").
  ++failures_detected_;
  NodeId dead = part.node;
  node_down(dead);
  ROAR_LOG_TAG(kInfo, "frontend")
      << "frontend " << index_ << ": node " << dead << " timed out on query "
      << query_id;
  trace_event(q.trace, core::TraceStage::kFailure, part_index, 0.0, dead);
  if (tracer_) {
    // The flight-recorder hook for the timeout path: dump the recent
    // timeline around the query that just lost a node.
    tracer_->anomaly(q.trace,
                     "query timeout: node " + std::to_string(dead) +
                         " declared dead on query " +
                         std::to_string(query_id),
                     net_.clock().now());
  }

  part.done = true;
  --q.outstanding;
  ++q.retries;

  // Split the unfinished sub-query across the failed node's neighbourhood
  // and reschedule (§4.4).
  std::vector<core::RoarSubQuery> splits;
  if (planner_.split_around_failure(ring_, part.sub, safe_p(), rng_,
                                    &splits)) {
    for (const auto& sub : splits) send_part(q, sub);
  } else {
    q.full_coverage = false;  // the dead node's window is unreachable
    q.missing_share += part.sub.share;
  }
  finish_if_done(q);
}

void Frontend::finish_if_done(PendingQuery& q) {
  if (q.outstanding > 0) return;
  double now = net_.clock().now();
  // extra_cost_s is the client-side cost the workload engine attributes
  // to this query (user-metadata cache-miss I/O): it is part of what the
  // user waits for, so it is part of the contract-visible latency.
  double total = now - q.submit_time + params_.fixed_cost_s + q.extra_cost_s;

  trace_event(q.trace, core::TraceStage::kQueryDone, 0, total);
  if (latency_hist_) latency_hist_->record(total);

  QueryOutcome out;
  out.id = q.id;
  out.trace = q.trace;
  out.complete = q.full_coverage;
  out.harvest = std::max(0.0, 1.0 - q.missing_share);
  out.matches = q.matches;
  out.parts_sent = static_cast<uint32_t>(q.parts.size());
  out.retries = q.retries;
  out.klass = q.klass;
  out.parts_shed = q.parts_shed;
  out.breakdown.schedule_s = q.schedule_wall_s;
  out.breakdown.network_s = 2 * net_.latency();
  out.breakdown.service_s = q.max_service;
  out.breakdown.total_s = total;
  out.breakdown.queue_s = std::max(
      0.0, total - q.max_service - out.breakdown.network_s -
               params_.fixed_cost_s);

  delays_.add(total);
  digest_window_.add(total);
  ++completed_;
  auto cb = std::move(q.cb);
  pending_.erase(q.id);
  if (cb) cb(out);
}

}  // namespace roar::cluster
