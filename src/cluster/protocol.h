// Wire protocol of the emulated ROAR cluster.
//
// All component communication — front-end to node sub-queries, replies,
// membership range pushes, reconfiguration fetch orders and confirmations,
// object updates — is encoded with net::Writer/Reader and delivered over
// net::InProcNetwork (or, byte-identically, the TCP transport). Keeping a
// real serialised protocol (rather than direct method calls) means the
// emulated cluster exercises the same decode paths a deployment would.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/ring_id.h"
#include "core/cluster_view.h"
#include "net/serialize.h"
#include "net/transport.h"

namespace roar::cluster {

using NodeId = uint32_t;

// Well-known endpoint addresses of a ROAR deployment. Front-ends are
// per-instance (§4.8: many front-ends serve one membership view); the
// ingest router serves the historical "update server" role, so it owns
// that address.
inline net::Address node_address(NodeId id) { return 100 + id; }
inline net::Address frontend_address(uint32_t i) { return 10 + i; }
inline constexpr net::Address kMembershipAddr = 0;
inline constexpr net::Address kUpdateServerAddr = 2;
inline constexpr uint32_t kMaxFrontends = 90;  // 10..99, below the nodes

enum class MsgType : uint8_t {
  kSubQuery = 1,
  kSubQueryReply = 2,
  // 3 (kRangePush) and 4 (kFetchOrder) are retired: ranges and §4.5
  // fetch orders are now derived from kViewDelta broadcasts. The values
  // stay reserved so captured traces remain unambiguous.
  kFetchComplete = 5,  // node -> control plane: §4.5 download done
  kObjectUpdate = 6,   // update server -> node (modeled-cost legacy path)
  kNodeStats = 7,      // node -> control plane (periodic load report)
  kUpdate = 8,         // ingest router -> replica: one logged ingest op
  kUpdateAck = 9,      // replica -> router: applied-LSN watermark
  kSyncReq = 10,       // replica -> router: anti-entropy catch-up request
  kSyncData = 11,      // router -> replica: ops since LSN / full segment
  kViewDelta = 12,     // control plane -> subscriber: one view epoch step
  kViewAck = 13,       // subscriber -> parent/control plane: epoch watermark
  kViewPull = 14,      // subscriber -> control plane: catch-up request
  kViewInterest = 15,  // node -> control plane: ring arcs it depends on
};

struct SubQueryMsg {
  uint64_t query_id = 0;
  uint32_t part_id = 0;
  // End-to-end trace id (core/tracer.h): stamped by the front-end,
  // echoed on the reply, so node-side spans join the query's tree.
  uint64_t trace = 0;
  RingId point;
  RingId window_begin;
  RingId window_end;
  uint32_t pq = 1;
  double share = 0.0;
  // core::QueryClass of the parent query: nodes shed lower-priority
  // classes first when their execution queues hit their Spang bounds.
  uint8_t klass = 0;

  net::Bytes encode() const;
  static std::optional<SubQueryMsg> decode(net::ByteView b);
};

struct SubQueryReplyMsg {
  uint64_t query_id = 0;
  uint32_t part_id = 0;
  uint64_t trace = 0;  // echoed from the sub-query
  uint64_t scanned = 0;   // metadata matched against the query
  uint64_t matches = 0;
  double service_s = 0.0;  // pure processing time (for speed estimation)
  // 1 = the node refused this sub-query at its queue bound. The reply
  // still proves liveness; the front-end books the window as uncovered
  // (harvest loss) instead of waiting out a timeout.
  uint8_t shed = 0;

  net::Bytes encode() const;
  static std::optional<SubQueryReplyMsg> decode(net::ByteView b);
};

// One step of the control state (core/cluster_view.h), disseminated by
// the ControlPlane. Incremental deltas apply against their carried basis
// epoch (possibly compacted across many steps); full snapshots replace
// the subscriber's state and may re-apply the current epoch (idempotent —
// this is what retransmission and revival catch-up lean on).
//
// Tree dissemination: a message carrying `relay_targets` instructs the
// recipient to forward the delta onward — it splits the target list into
// up to `relay_fanout` contiguous chunks, sends each chunk's head the
// chunk's tail as that child's own relay_targets, and aggregates the
// children's ack watermarks into its own upward ack. `ack_to` names where
// the recipient's kViewAck must go: the control plane for direct sends,
// the forwarding relay for tree-disseminated deltas.
struct ViewDeltaMsg {
  core::ViewDelta delta;
  net::Address ack_to = kMembershipAddr;
  uint8_t relay_fanout = 0;
  std::vector<net::Address> relay_targets;

  net::Bytes encode() const;
  static std::optional<ViewDeltaMsg> decode(net::ByteView b);
};

// Subscriber -> parent relay or control plane: "my subtree has applied
// `epoch`". The control plane's per-subscriber watermarks come from
// these; they gate surplus drops after a p increase and steer laggard
// retransmission. A relay reports the minimum watermark over itself and
// its children, with `agg_count` subscribers covered (1 = just the
// sender), so the control plane's per-epoch ack work is O(fanout), not
// O(members). Front-ends piggyback their periodic latency digest (zeros
// from storage nodes) — the adaptive-p controller's query-side signal.
struct ViewAckMsg {
  net::Address subscriber = 0;
  uint64_t epoch = 0;
  uint32_t agg_count = 1;  // subscribers this watermark covers (>= 1)
  // Latency digest over the front-end's current window. `completed` is
  // the window's query count — 0 marks a plain watermark ack (or an
  // empty window), which carries no latency signal and must not steer
  // the controller.
  uint64_t completed = 0;
  double p99_s = 0.0;
  double mean_s = 0.0;

  net::Bytes encode() const;
  static std::optional<ViewAckMsg> decode(net::ByteView b);
};

// Node -> control plane: the ring arcs this node's control logic depends
// on (its stored arc plus margin). The control plane thereafter skips the
// node on view waves that touch none of its arcs (level changes, full
// snapshots and changes to the node itself always qualify); an empty arc
// list restores full interest. Refreshed whenever the node's recomputed
// coverage escapes the registered arcs (reconfigure, join, range move).
struct ViewInterestMsg {
  net::Address subscriber = 0;
  uint64_t epoch = 0;  // view epoch the arcs were derived from
  std::vector<Arc> arcs;

  net::Bytes encode() const;
  static std::optional<ViewInterestMsg> decode(net::ByteView b);
};

// Subscriber -> control plane: "send me everything after `have_epoch`".
// Sent on a detected gap and on restart after a crash; answered with the
// retained delta suffix or a full snapshot.
struct ViewPullMsg {
  net::Address subscriber = 0;
  uint64_t have_epoch = 0;

  net::Bytes encode() const;
  static std::optional<ViewPullMsg> decode(net::ByteView b);
};

struct FetchCompleteMsg {
  NodeId node = 0;
  uint32_t new_p = 1;

  net::Bytes encode() const;
  static std::optional<FetchCompleteMsg> decode(net::ByteView b);
};

struct ObjectUpdateMsg {
  RingId object_id;
  uint32_t payload_bytes = 0;

  net::Bytes encode() const;
  static std::optional<ObjectUpdateMsg> decode(net::ByteView b);
};

struct NodeStatsMsg {
  NodeId node = 0;
  double busy_fraction = 0.0;
  double observed_rate = 0.0;  // metadata/s

  net::Bytes encode() const;
  static std::optional<NodeStatsMsg> decode(net::ByteView b);
};

// One logged index mutation, replicated by the ingest router to every
// replica of the owning shard. (shard, lsn) totally orders the shard's
// history; `enc_seed` makes every replica's encryption of an added
// document byte-identical (each seeds its encoder Rng with it), which is
// what makes replica match results byte-comparable.
struct UpdateMsg {
  uint32_t shard = 0;
  uint64_t lsn = 0;
  uint8_t op = 0;  // 0 = add document, 1 = delete document
  RingId doc_id;
  uint64_t enc_seed = 0;  // deterministic encryption stream (add only)
  std::string path;
  std::vector<std::string> keywords;
  int64_t size_bytes = 0;
  int64_t mtime = 0;
  // Ingest trace id (core/tracer.h: shard + LSN), stamped at commit and
  // carried through replication and anti-entropy alike.
  uint64_t trace = 0;

  static constexpr uint8_t kAdd = 0;
  static constexpr uint8_t kDelete = 1;

  net::Bytes encode() const;
  static std::optional<UpdateMsg> decode(net::ByteView b);
};

// Replica -> router: "my contiguously applied LSN for `shard` is
// `applied_lsn`". The router's per-replica watermarks come from these.
struct UpdateAckMsg {
  NodeId node = 0;
  uint32_t shard = 0;
  uint64_t applied_lsn = 0;

  net::Bytes encode() const;
  static std::optional<UpdateAckMsg> decode(net::ByteView b);
};

// Replica -> router: anti-entropy. "Send me everything for `shard` after
// `have_lsn`." Sent periodically and whenever a gap is detected. A reply
// never exceeds one chunk (IngestConfig::sync_chunk_{ops,bytes}); the
// requester clocks the rest of the stream itself: each applied chunk is
// the credit that releases the next request. Mid full-segment transfer
// the request pins the segment generation it is accumulating
// (`segment_lsn` = the generation's issued LSN, `chunk_offset` = the next
// op index it needs); both stay 0 on a fresh request.
struct SyncReqMsg {
  NodeId node = 0;
  uint32_t shard = 0;
  uint64_t have_lsn = 0;
  uint64_t segment_lsn = 0;   // full-segment generation being resumed
  uint64_t chunk_offset = 0;  // next op index of that segment
  uint64_t trace = 0;         // sync-stream trace id (node + shard)

  net::Bytes encode() const;
  static std::optional<SyncReqMsg> decode(net::ByteView b);
};

// Router -> replica: one catch-up chunk, never larger than the chunk
// budget (IngestConfig::sync_chunk_{ops,bytes}). Incremental
// (`full_segment` == 0: ops are a contiguous log suffix after the
// requested LSN) or one slice of a full
// segment (`full_segment` == 1: `ops` describe the shard's authoritative
// live state and the receiver reconciles its local state against them —
// sent when the requested LSN predates the router's retained log).
// `issued_lsn` is the router's latest LSN for the shard and doubles as
// the full segment's generation stamp: the receiver accumulates chunks
// only while it matches, and reconciles (jumping its watermark to
// `issued_lsn`) once all `total_ops` arrived. Incremental chunks leave
// chunk_offset/total_ops zero; the receiver re-requests while its
// applied LSN still trails `issued_lsn`.
struct SyncDataMsg {
  uint32_t shard = 0;
  uint8_t full_segment = 0;
  uint64_t issued_lsn = 0;
  uint64_t chunk_offset = 0;  // full segments: first op slot of this chunk
  uint64_t total_ops = 0;     // full segments: segment size in ops
  uint64_t trace = 0;         // echoed from the clocking SyncReqMsg
  std::vector<UpdateMsg> ops;

  net::Bytes encode() const;
  static std::optional<SyncDataMsg> decode(net::ByteView b);
};

// Reads the leading type byte without consuming the payload.
std::optional<MsgType> peek_type(net::ByteView b);

}  // namespace roar::cluster
