// Wire protocol of the emulated ROAR cluster.
//
// All component communication — front-end to node sub-queries, replies,
// membership range pushes, reconfiguration fetch orders and confirmations,
// object updates — is encoded with net::Writer/Reader and delivered over
// net::InProcNetwork (or, byte-identically, the TCP transport). Keeping a
// real serialised protocol (rather than direct method calls) means the
// emulated cluster exercises the same decode paths a deployment would.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/ring_id.h"
#include "net/serialize.h"
#include "net/transport.h"

namespace roar::cluster {

using NodeId = uint32_t;

// Well-known endpoint addresses of a ROAR deployment. The ingest router
// serves the historical "update server" role, so it owns that address.
inline net::Address node_address(NodeId id) { return 100 + id; }
inline constexpr net::Address kMembershipAddr = 0;
inline constexpr net::Address kFrontendAddr = 1;
inline constexpr net::Address kUpdateServerAddr = 2;

enum class MsgType : uint8_t {
  kSubQuery = 1,
  kSubQueryReply = 2,
  kRangePush = 3,      // membership -> node: your range is [..]
  kFetchOrder = 4,     // membership -> node: download arc for new p
  kFetchComplete = 5,  // node -> membership
  kObjectUpdate = 6,   // update server -> node (modeled-cost legacy path)
  kNodeStats = 7,      // node -> membership (load report)
  kUpdate = 8,         // ingest router -> replica: one logged ingest op
  kUpdateAck = 9,      // replica -> router: applied-LSN watermark
  kSyncReq = 10,       // replica -> router: anti-entropy catch-up request
  kSyncData = 11,      // router -> replica: ops since LSN / full segment
};

struct SubQueryMsg {
  uint64_t query_id = 0;
  uint32_t part_id = 0;
  RingId point;
  RingId window_begin;
  RingId window_end;
  uint32_t pq = 1;
  double share = 0.0;

  net::Bytes encode() const;
  static std::optional<SubQueryMsg> decode(const net::Bytes& b);
};

struct SubQueryReplyMsg {
  uint64_t query_id = 0;
  uint32_t part_id = 0;
  uint64_t scanned = 0;   // metadata matched against the query
  uint64_t matches = 0;
  double service_s = 0.0;  // pure processing time (for speed estimation)

  net::Bytes encode() const;
  static std::optional<SubQueryReplyMsg> decode(const net::Bytes& b);
};

struct RangePushMsg {
  RingId range_begin;
  uint64_t range_len = 0;
  uint32_t p = 1;          // current partitioning level
  bool fixed = false;      // administrator-pinned range (§4.9)

  net::Bytes encode() const;
  static std::optional<RangePushMsg> decode(const net::Bytes& b);
};

struct FetchOrderMsg {
  RingId arc_begin;
  uint64_t arc_len = 0;
  uint32_t new_p = 1;

  net::Bytes encode() const;
  static std::optional<FetchOrderMsg> decode(const net::Bytes& b);
};

struct FetchCompleteMsg {
  NodeId node = 0;
  uint32_t new_p = 1;

  net::Bytes encode() const;
  static std::optional<FetchCompleteMsg> decode(const net::Bytes& b);
};

struct ObjectUpdateMsg {
  RingId object_id;
  uint32_t payload_bytes = 0;

  net::Bytes encode() const;
  static std::optional<ObjectUpdateMsg> decode(const net::Bytes& b);
};

struct NodeStatsMsg {
  NodeId node = 0;
  double busy_fraction = 0.0;
  double observed_rate = 0.0;  // metadata/s

  net::Bytes encode() const;
  static std::optional<NodeStatsMsg> decode(const net::Bytes& b);
};

// One logged index mutation, replicated by the ingest router to every
// replica of the owning shard. (shard, lsn) totally orders the shard's
// history; `enc_seed` makes every replica's encryption of an added
// document byte-identical (each seeds its encoder Rng with it), which is
// what makes replica match results byte-comparable.
struct UpdateMsg {
  uint32_t shard = 0;
  uint64_t lsn = 0;
  uint8_t op = 0;  // 0 = add document, 1 = delete document
  RingId doc_id;
  uint64_t enc_seed = 0;  // deterministic encryption stream (add only)
  std::string path;
  std::vector<std::string> keywords;
  int64_t size_bytes = 0;
  int64_t mtime = 0;

  static constexpr uint8_t kAdd = 0;
  static constexpr uint8_t kDelete = 1;

  net::Bytes encode() const;
  static std::optional<UpdateMsg> decode(const net::Bytes& b);
};

// Replica -> router: "my contiguously applied LSN for `shard` is
// `applied_lsn`". The router's per-replica watermarks come from these.
struct UpdateAckMsg {
  NodeId node = 0;
  uint32_t shard = 0;
  uint64_t applied_lsn = 0;

  net::Bytes encode() const;
  static std::optional<UpdateAckMsg> decode(const net::Bytes& b);
};

// Replica -> router: anti-entropy. "Send me everything for `shard` after
// `have_lsn`." Sent periodically and whenever a gap is detected.
struct SyncReqMsg {
  NodeId node = 0;
  uint32_t shard = 0;
  uint64_t have_lsn = 0;

  net::Bytes encode() const;
  static std::optional<SyncReqMsg> decode(const net::Bytes& b);
};

// Router -> replica: catch-up payload. Incremental (`full_segment` == 0:
// ops are the contiguous log suffix after the requested LSN) or a full
// segment (`full_segment` == 1: `ops` describe the shard's authoritative
// live state and the receiver reconciles its local state against them —
// sent when the requested LSN predates the router's retained log).
// `issued_lsn` is the router's
// latest LSN for the shard; after applying, the replica's watermark is
// exactly that.
struct SyncDataMsg {
  uint32_t shard = 0;
  uint8_t full_segment = 0;
  uint64_t issued_lsn = 0;
  std::vector<UpdateMsg> ops;

  net::Bytes encode() const;
  static std::optional<SyncDataMsg> decode(const net::Bytes& b);
};

// Reads the leading type byte without consuming the payload.
std::optional<MsgType> peek_type(const net::Bytes& b);

}  // namespace roar::cluster
