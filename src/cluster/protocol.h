// Wire protocol of the emulated ROAR cluster.
//
// All component communication — front-end to node sub-queries, replies,
// membership range pushes, reconfiguration fetch orders and confirmations,
// object updates — is encoded with net::Writer/Reader and delivered over
// net::InProcNetwork (or, byte-identically, the TCP transport). Keeping a
// real serialised protocol (rather than direct method calls) means the
// emulated cluster exercises the same decode paths a deployment would.
#pragma once

#include <optional>

#include "common/ring_id.h"
#include "net/serialize.h"

namespace roar::cluster {

using NodeId = uint32_t;

enum class MsgType : uint8_t {
  kSubQuery = 1,
  kSubQueryReply = 2,
  kRangePush = 3,      // membership -> node: your range is [..]
  kFetchOrder = 4,     // membership -> node: download arc for new p
  kFetchComplete = 5,  // node -> membership
  kObjectUpdate = 6,   // update server -> node
  kNodeStats = 7,      // node -> membership (load report)
};

struct SubQueryMsg {
  uint64_t query_id = 0;
  uint32_t part_id = 0;
  RingId point;
  RingId window_begin;
  RingId window_end;
  uint32_t pq = 1;
  double share = 0.0;

  net::Bytes encode() const;
  static std::optional<SubQueryMsg> decode(const net::Bytes& b);
};

struct SubQueryReplyMsg {
  uint64_t query_id = 0;
  uint32_t part_id = 0;
  uint64_t scanned = 0;   // metadata matched against the query
  uint64_t matches = 0;
  double service_s = 0.0;  // pure processing time (for speed estimation)

  net::Bytes encode() const;
  static std::optional<SubQueryReplyMsg> decode(const net::Bytes& b);
};

struct RangePushMsg {
  RingId range_begin;
  uint64_t range_len = 0;
  uint32_t p = 1;          // current partitioning level
  bool fixed = false;      // administrator-pinned range (§4.9)

  net::Bytes encode() const;
  static std::optional<RangePushMsg> decode(const net::Bytes& b);
};

struct FetchOrderMsg {
  RingId arc_begin;
  uint64_t arc_len = 0;
  uint32_t new_p = 1;

  net::Bytes encode() const;
  static std::optional<FetchOrderMsg> decode(const net::Bytes& b);
};

struct FetchCompleteMsg {
  NodeId node = 0;
  uint32_t new_p = 1;

  net::Bytes encode() const;
  static std::optional<FetchCompleteMsg> decode(const net::Bytes& b);
};

struct ObjectUpdateMsg {
  RingId object_id;
  uint32_t payload_bytes = 0;

  net::Bytes encode() const;
  static std::optional<ObjectUpdateMsg> decode(const net::Bytes& b);
};

struct NodeStatsMsg {
  NodeId node = 0;
  double busy_fraction = 0.0;
  double observed_rate = 0.0;  // metadata/s

  net::Bytes encode() const;
  static std::optional<NodeStatsMsg> decode(const net::Bytes& b);
};

// Reads the leading type byte without consuming the payload.
std::optional<MsgType> peek_type(const net::Bytes& b);

}  // namespace roar::cluster
