#include "cluster/relay.h"

namespace roar::cluster::relay {

std::vector<Branch> split(const std::vector<net::Address>& targets,
                          uint32_t fanout) {
  std::vector<Branch> out;
  if (targets.empty() || fanout == 0) return out;
  size_t k = std::min<size_t>(fanout, targets.size());
  out.reserve(k);
  size_t base = targets.size() / k;
  size_t extra = targets.size() % k;  // first `extra` chunks get one more
  size_t at = 0;
  for (size_t i = 0; i < k; ++i) {
    size_t len = base + (i < extra ? 1 : 0);
    Branch b;
    b.head = targets[at];
    b.rest.assign(targets.begin() + static_cast<ptrdiff_t>(at + 1),
                  targets.begin() + static_cast<ptrdiff_t>(at + len));
    out.push_back(std::move(b));
    at += len;
  }
  return out;
}

}  // namespace roar::cluster::relay
