// The ROAR control plane (§4.5, §4.8–§4.9): single writer of the
// epoch-versioned ClusterView, distributed to every node and front-end
// over the wire.
//
// The ControlPlane owns the §4.5 ReplicationController and publishes the
// membership server's state as ViewDelta waves. Dissemination is scoped
// and tree-shaped rather than broadcast:
//
//  * Interest scoping — nodes register the ring arcs their control logic
//    depends on (kViewInterest). A wave that changes no p level and
//    touches none of a node's arcs (nor the node itself, nor its §4.5
//    pending membership) skips that node entirely, so a single fetch
//    confirmation no longer costs O(members) messages. Front-ends keep
//    full interest and receive every epoch directly: the drop gate and
//    the convergence audit key off per-front-end watermarks.
//  * Tree dissemination — waves that do concern most nodes (level
//    changes, full snapshots, membership churn) go to the k roots of a
//    deterministic relay tree (target list sorted, rotated by the view
//    epoch at build time, rebuilt on membership change). Interior nodes
//    forward to their children and aggregate child ack watermarks upward,
//    so the per-epoch send and ack work here is O(k), not O(members).
//  * Delta compaction — the retained log folds into one compacted delta
//    per recipient spanning whatever range it is owed (per member the
//    latest change wins), so a laggard's kViewPull costs one message.
//    Retention adapts to the observed lag distribution.
//
// Subscribers ack each applied epoch (kViewAck, possibly aggregated) and
// pull on gaps (kViewPull); the periodic retransmission tick walks only
// the laggard set — subscribers whose watermark trails what they were
// directly sent — so a converged cluster pays O(1) per tick.
//
// Reconfiguration choreography over views:
//
//  * decrease p (r grows): pending confirmers ride in the view; each node
//    that finds itself pending starts its background download and reports
//    kFetchComplete. safe_p (and storage_p) flip only when the last
//    confirmation lands — until then every published view keeps the old
//    safe level, so front-ends never partition a query below it.
//  * increase p (r shrinks): safe_p rises immediately, but storage_p —
//    the level nodes store at — rises only once the aggregated front-end
//    ack watermark (the minimum over live front-ends) reaches the raising
//    epoch (the drop gate). A front-end still planning at the old p
//    therefore always finds the old replication arcs on disk: "no query
//    is ever partitioned with an unsafe p" holds end-to-end, not just
//    inside one process.
//
// The adaptive-p controller (core/adaptive_p.h) plugs in here: the
// control plane feeds it the kNodeStats load reports and the front-ends'
// piggybacked latency digests, ticks it on a fixed cadence, and gates its
// decisions through the same §4.5 safety machinery as manual changes.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "cluster/protocol.h"
#include "cluster/relay.h"
#include "core/adaptive_p.h"
#include "core/cluster_view.h"
#include "core/membership.h"

namespace roar::cluster {

struct ControlPlaneParams {
  uint32_t initial_p = 8;
  // Laggard-resync cadence; also nudges pending §4.5 confirmers whose
  // completion may have been lost. 0 disables the timer (tests only).
  double retransmit_interval_s = 0.5;
  // Floor on the incremental deltas retained for compacted kViewPull
  // replies; retention adapts upward (to at most delta_log_retain_max)
  // from the live lag distribution. Pulls from further behind get a full
  // snapshot.
  size_t delta_log_retain = 64;
  size_t delta_log_retain_max = 512;
  // Relay-tree fanout k: direct children per relay (and tree roots at the
  // control plane).
  uint32_t relay_fanout = 8;
  // A wave whose interested-node count is at least node_subs/tree_divisor
  // goes through the relay tree (reaching everyone); smaller sets get
  // direct interest-sliced sends.
  uint32_t tree_divisor = 4;
  // Closed-loop p control (off by default).
  bool adaptive = false;
  core::AdaptivePParams adaptive_params;
  double adaptive_interval_s = 4.0;
};

class ControlPlane {
 public:
  ControlPlane(net::Transport& net, core::MembershipServer& membership,
               ControlPlaneParams params);

  // Binds kMembershipAddr and arms the periodic timers.
  void start();

  // --- subscribers -------------------------------------------------------
  void subscribe_node(NodeId id);
  void subscribe_frontend(net::Address addr);
  // Departed subscribers (graceful leave, long-term removal) stop
  // receiving waves and retransmissions.
  void unsubscribe(net::Address addr);
  // Harness notice that a front-end crashed/revived. Crashed front-ends
  // leave the drop gate (they re-sync through kViewPull on restart) and
  // are skipped by retransmission.
  void set_frontend_down(net::Address addr, bool down);
  // Nodes still downloading their arc (§4.3) are published as down.
  void set_warming(NodeId id, bool warming);
  bool is_warming(NodeId id) const { return warming_.count(id) > 0; }

  // --- publication -------------------------------------------------------
  // Captures the current membership + reconfiguration state; if anything
  // changed, bumps the epoch and disseminates the delta (sliced or
  // tree-relayed by wave scope). Call after every membership mutation
  // (the harnesses do).
  void publish();
  // Re-sends the current view as a full snapshot: to every subscriber
  // when `everyone` (the heal path's promptness), else only to the
  // laggard set; the retransmit timer provides the latter as a backstop.
  void resync(bool everyone);

  // --- reconfiguration (§4.5) -------------------------------------------
  void order_p_change(uint32_t p_new);
  // Long-term failure handling: a confirmer removed from the ring can
  // never report; stop waiting on it (completes the change if last).
  void abandon_fetch(NodeId id);
  // A change is in flight: confirmations pending (decrease) or the drop
  // gate waiting on front-end acks (increase).
  bool reconfig_busy() const {
    return repl_.in_progress() || drop_gate_.has_value();
  }
  bool drop_gate_pending() const { return drop_gate_.has_value(); }

  // --- introspection -----------------------------------------------------
  const core::ClusterView& view() const { return view_; }
  const core::ReplicationController& replication() const { return repl_; }
  uint64_t epoch() const { return view_.epoch; }
  uint32_t safe_p() const { return repl_.safe_p(); }
  uint32_t target_p() const { return repl_.target_p(); }
  uint32_t storage_p() const { return storage_p_; }
  // Committed p changes (a decrease counts when the last fetch confirms,
  // an increase when the drop gate clears).
  uint32_t p_changes_committed() const { return p_changes_; }
  // Last acked epoch of a subscriber (0 if never heard from). For a relay
  // root this is its subtree's aggregated minimum.
  uint64_t acked_epoch(net::Address addr) const;
  // Worst view-convergence lag over the laggard set: how far a
  // subscriber's watermark trails the newest epoch it was directly owed
  // (0 = everyone caught up). Interest-sliced subscribers legitimately
  // sit below epoch(); they are not lagging. O(laggards).
  uint64_t max_epoch_lag() const;
  const core::AdaptivePController* adaptive() const {
    return adaptive_ ? &*adaptive_ : nullptr;
  }

  // --- dissemination metrics --------------------------------------------
  // View delta messages this control plane sent (direct + tree roots).
  uint64_t deltas_sent() const { return deltas_sent_; }
  // Node sends skipped because the wave touched none of their interest.
  uint64_t interest_skips() const { return interest_skips_; }
  // Aggregated subscribers carried by relayed acks beyond their senders.
  uint64_t acks_aggregated() const { return acks_aggregated_; }
  // Log deltas folded into compacted messages / messages they became.
  double compaction_ratio() const {
    return compaction_msgs_ == 0
               ? 1.0
               : static_cast<double>(compaction_folded_) /
                     static_cast<double>(compaction_msgs_);
  }
  size_t delta_log_retain() const { return retain_; }
  uint32_t tree_rebuilds() const { return tree_rebuilds_; }
  // Current dissemination-tree roots and their subtree sizes (tests use
  // this to pick an interior node to crash mid-wave).
  std::vector<std::pair<net::Address, size_t>> relay_roots() const {
    std::vector<std::pair<net::Address, size_t>> out;
    out.reserve(tree_.size());
    for (const auto& r : tree_) out.emplace_back(r.addr, r.subtree.size());
    return out;
  }

  // Invoked when a reconfiguration commits (safe_p reached target on a
  // decrease; drop gate cleared on an increase). Harnesses log here.
  std::function<void(uint32_t new_p)> on_reconfigured;

 private:
  struct Subscriber {
    bool is_frontend = false;
    bool down = false;
    NodeId id = core::kInvalidNode;  // nodes only
    uint64_t acked = 0;     // newest (possibly aggregated) watermark
    uint64_t expected = 0;  // newest epoch directly pushed to this sub
    bool has_interest = false;
    std::vector<Arc> interest;
  };

  // What one published wave touches, for interest scoping.
  struct WaveScope {
    bool broad = false;  // level change or full snapshot: everyone cares
    bool members_changed = false;  // liveness/membership set changed
    std::vector<RingId> touched;   // positions whose coverage changed
    std::vector<NodeId> touched_ids;  // upserted/removed/pending-diff ids
  };

  // One direct child of the control plane in the relay tree.
  struct Root {
    net::Address addr = 0;
    std::vector<net::Address> subtree;  // its relay_targets
    uint64_t basis = 0;  // newest epoch sent down this branch
    relay::Window win;
    bool queued_wave = false;  // a wave deferred by the AIMD window
  };

  void handle(net::Address from, net::ByteView payload);
  void on_fetch_complete(const FetchCompleteMsg& m);
  void on_view_ack(const ViewAckMsg& m);
  void on_view_pull(const ViewPullMsg& m);
  void on_view_interest(const ViewInterestMsg& m);
  void on_node_stats(const NodeStatsMsg& m);
  void maybe_clear_drop_gate();
  // Every committed change runs exactly this: storage level, counter,
  // view epoch, notification.
  void commit_change(uint32_t p_new);

  WaveScope classify_wave(const core::ClusterView& prev,
                          const core::ClusterView& next,
                          const core::ViewDelta& d) const;
  bool is_interested(const Subscriber& sub, const WaveScope& scope) const;
  void disseminate(const core::ViewDelta& d, const WaveScope& scope);
  void rebuild_tree();
  // Sends root r the compacted wave from its branch basis to the current
  // epoch (deferred if its window is full).
  void send_wave_to_root(Root& r);
  // Direct interest-sliced send: one compacted delta covering whatever
  // `sub` is owed since its last direct push (or the last tree wave).
  void send_compact_to(net::Address to, Subscriber& sub);
  void send_full(net::Address to);
  // Builds the delta owed to a subscriber whose state is at `basis`:
  // the log fold when retained, a full snapshot otherwise.
  ViewDeltaMsg delta_since(uint64_t basis);
  void send_raw(net::Address to, const net::Bytes& payload);
  void trim_log();
  void adapt_retain();
  // Bookkeeping: a direct push to `addr` at the current epoch.
  void mark_expected(net::Address addr, Subscriber& sub);
  void retransmit_tick();
  void adaptive_tick();
  core::ClusterView capture(uint64_t epoch) const;
  Root* find_root(net::Address addr);

  net::Transport& net_;
  core::MembershipServer& membership_;
  ControlPlaneParams params_;
  core::ReplicationController repl_;
  uint32_t storage_p_;
  // An increase waiting on the aggregated front-end watermark
  // (p_new, epoch).
  std::optional<std::pair<uint32_t, uint64_t>> drop_gate_;
  core::ClusterView view_;  // last published
  std::map<net::Address, Subscriber> subs_;
  // Subscribers whose acked watermark trails their expected epoch — the
  // only set the retransmit tick and the lag gauge walk.
  std::set<net::Address> laggards_;
  // (acked, addr) over live front-ends: the aggregated front-end
  // watermark the drop gate waits on is begin()->first.
  std::set<std::pair<uint64_t, net::Address>> frontend_acked_;
  std::deque<core::ViewDelta> delta_log_;  // epochs (epoch - size, epoch]
  size_t retain_;
  std::vector<Root> tree_;
  bool tree_dirty_ = true;
  uint64_t last_tree_epoch_ = 0;  // newest epoch any tree wave carried
  std::set<NodeId> warming_;
  uint32_t p_changes_ = 0;
  uint64_t deltas_sent_ = 0;
  uint64_t interest_skips_ = 0;
  uint64_t acks_aggregated_ = 0;
  uint64_t compaction_folded_ = 0;
  uint64_t compaction_msgs_ = 0;
  uint32_t tree_rebuilds_ = 0;
  std::optional<core::AdaptivePController> adaptive_;
};

}  // namespace roar::cluster
