// Control-plane glue shared by the cluster harnesses.
//
// EmulatedCluster (virtual time, InProcNetwork) and TcpCluster (wall
// clock, loopback TCP) run the identical membership/reconfiguration
// choreography; these helpers keep that logic in one place so the two
// harnesses differ only in transport and time source.
#pragma once

#include <functional>

#include "cluster/frontend.h"
#include "core/membership.h"

namespace roar::cluster {

// Pushes the authoritative range + partitioning level p to every node of
// `ring` (as kRangePush messages from the membership address) and re-syncs
// the front-end's ring mirror.
void push_ranges(const core::Ring& ring, uint32_t p, net::Transport& net,
                 Frontend& frontend);

// Starts a reconfiguration to p_new (§4.5). Increases switch immediately;
// decreases order a fetch from every live node and arm the front-end's
// safety tracking. No-op when p_new equals the current safe p.
void order_p_change(const core::Ring& ring, uint32_t p_new,
                    net::Transport& net, Frontend& frontend);

// Re-sends the outstanding fetch orders of an in-progress p decrease to
// every pending confirmer still live on `ring`. Fetch orders are one-shot
// datagrams: a partition or a crash-and-revive can black-hole the
// original, wedging safe_p forever — harnesses call this after a heal or
// a revival to let the reconfiguration make progress again. Duplicate
// orders are harmless (the node re-fetches and re-confirms; confirming
// twice is a no-op). Does nothing when no change is in progress.
void reissue_fetch_orders(const core::Ring& ring, net::Transport& net,
                          Frontend& frontend);

// Handles one message addressed to the membership server. On a
// kFetchComplete that completes the reconfiguration (safe_p reached the
// sender's new_p), invokes `on_reconfigured(new_p)` — harnesses use it to
// republish ranges.
void handle_membership_message(
    const net::Bytes& payload, Frontend& frontend,
    const std::function<void(uint32_t new_p)>& on_reconfigured);

}  // namespace roar::cluster
