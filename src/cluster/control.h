// The ROAR control plane (§4.5, §4.8–§4.9): single writer of the
// epoch-versioned ClusterView, distributed to every node and front-end
// over the wire.
//
// The ControlPlane owns the §4.5 ReplicationController and publishes the
// membership server's state as ViewDelta broadcasts. Subscribers ack each
// applied epoch (kViewAck) and pull on gaps (kViewPull); a periodic
// retransmission tick re-sends the current view to any subscriber whose
// watermark lags, so partitioned or revived subscribers converge without
// bespoke recovery paths. This retires the old one-shot kFetchOrder
// re-issue dance: a node that missed the delta ordering its fetch simply
// receives the epoch again and derives the order from the view.
//
// Reconfiguration choreography over views:
//
//  * decrease p (r grows): pending confirmers ride in the view; each node
//    that finds itself pending starts its background download and reports
//    kFetchComplete. safe_p (and storage_p) flip only when the last
//    confirmation lands — until then every published view keeps the old
//    safe level, so front-ends never partition a query below it.
//  * increase p (r shrinks): safe_p rises immediately, but storage_p —
//    the level nodes store at — rises only once every live front-end has
//    acked the raising epoch (the drop gate). A front-end still planning
//    at the old p therefore always finds the old replication arcs on
//    disk: "no query is ever partitioned with an unsafe p" holds
//    end-to-end, not just inside one process.
//
// The adaptive-p controller (core/adaptive_p.h) plugs in here: the
// control plane feeds it the kNodeStats load reports and the front-ends'
// piggybacked latency digests, ticks it on a fixed cadence, and gates its
// decisions through the same §4.5 safety machinery as manual changes.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>

#include "cluster/protocol.h"
#include "core/adaptive_p.h"
#include "core/cluster_view.h"
#include "core/membership.h"

namespace roar::cluster {

struct ControlPlaneParams {
  uint32_t initial_p = 8;
  // Laggard-resync cadence; also nudges pending §4.5 confirmers whose
  // completion may have been lost. 0 disables the timer (tests only).
  double retransmit_interval_s = 0.5;
  // Incremental deltas retained for kViewPull suffix replies; pulls from
  // further behind get a full snapshot.
  size_t delta_log_retain = 64;
  // Closed-loop p control (off by default).
  bool adaptive = false;
  core::AdaptivePParams adaptive_params;
  double adaptive_interval_s = 4.0;
};

class ControlPlane {
 public:
  ControlPlane(net::Transport& net, core::MembershipServer& membership,
               ControlPlaneParams params);

  // Binds kMembershipAddr and arms the periodic timers.
  void start();

  // --- subscribers -------------------------------------------------------
  void subscribe_node(NodeId id);
  void subscribe_frontend(net::Address addr);
  // Departed subscribers (graceful leave, long-term removal) stop
  // receiving broadcasts and retransmissions.
  void unsubscribe(net::Address addr);
  // Harness notice that a front-end crashed/revived. Crashed front-ends
  // leave the drop gate (they re-sync through kViewPull on restart) and
  // are skipped by retransmission.
  void set_frontend_down(net::Address addr, bool down);
  // Nodes still downloading their arc (§4.3) are published as down.
  void set_warming(NodeId id, bool warming);
  bool is_warming(NodeId id) const { return warming_.count(id) > 0; }

  // --- publication -------------------------------------------------------
  // Captures the current membership + reconfiguration state; if anything
  // changed, bumps the epoch and broadcasts the delta. Call after every
  // membership mutation (the harnesses do).
  void publish();
  // Re-sends the current view: to every subscriber when `everyone`, else
  // only to those whose ack watermark lags. The heal path uses this for
  // promptness; the retransmit timer provides the same as a backstop.
  void resync(bool everyone);

  // --- reconfiguration (§4.5) -------------------------------------------
  void order_p_change(uint32_t p_new);
  // Long-term failure handling: a confirmer removed from the ring can
  // never report; stop waiting on it (completes the change if last).
  void abandon_fetch(NodeId id);
  // A change is in flight: confirmations pending (decrease) or the drop
  // gate waiting on front-end acks (increase).
  bool reconfig_busy() const {
    return repl_.in_progress() || drop_gate_.has_value();
  }
  bool drop_gate_pending() const { return drop_gate_.has_value(); }

  // --- introspection -----------------------------------------------------
  const core::ClusterView& view() const { return view_; }
  const core::ReplicationController& replication() const { return repl_; }
  uint64_t epoch() const { return view_.epoch; }
  uint32_t safe_p() const { return repl_.safe_p(); }
  uint32_t target_p() const { return repl_.target_p(); }
  uint32_t storage_p() const { return storage_p_; }
  // Committed p changes (a decrease counts when the last fetch confirms,
  // an increase when the drop gate clears).
  uint32_t p_changes_committed() const { return p_changes_; }
  // Last acked epoch of a subscriber (0 if never heard from).
  uint64_t acked_epoch(net::Address addr) const;
  // Worst view-convergence lag: epoch() − min acked epoch over
  // subscribers not marked down (0 = everyone caught up). The metrics
  // plane's control.epoch_lag gauge.
  uint64_t max_epoch_lag() const {
    uint64_t lag = 0;
    for (const auto& [addr, sub] : subs_) {
      if (sub.down) continue;
      uint64_t d = view_.epoch > sub.acked ? view_.epoch - sub.acked : 0;
      if (d > lag) lag = d;
    }
    return lag;
  }
  const core::AdaptivePController* adaptive() const {
    return adaptive_ ? &*adaptive_ : nullptr;
  }

  // Invoked when a reconfiguration commits (safe_p reached target on a
  // decrease; drop gate cleared on an increase). Harnesses log here.
  std::function<void(uint32_t new_p)> on_reconfigured;

 private:
  struct Subscriber {
    bool is_frontend = false;
    bool down = false;
    uint64_t acked = 0;
  };

  void handle(net::Address from, net::ByteView payload);
  void on_fetch_complete(const FetchCompleteMsg& m);
  void on_view_ack(const ViewAckMsg& m);
  void on_view_pull(const ViewPullMsg& m);
  void on_node_stats(const NodeStatsMsg& m);
  void maybe_clear_drop_gate();
  // Every committed change runs exactly this: storage level, counter,
  // view epoch, notification.
  void commit_change(uint32_t p_new);
  void send_full(net::Address to);
  void broadcast(const ViewDeltaMsg& msg);
  void retransmit_tick();
  void adaptive_tick();
  core::ClusterView capture(uint64_t epoch) const;

  net::Transport& net_;
  core::MembershipServer& membership_;
  ControlPlaneParams params_;
  core::ReplicationController repl_;
  uint32_t storage_p_;
  // An increase waiting for every live front-end to ack (p_new, epoch).
  std::optional<std::pair<uint32_t, uint64_t>> drop_gate_;
  core::ClusterView view_;  // last published
  std::map<net::Address, Subscriber> subs_;
  std::deque<ViewDeltaMsg> delta_log_;  // epochs (epoch - size, epoch]
  std::set<NodeId> warming_;
  uint32_t p_changes_ = 0;
  std::optional<core::AdaptivePController> adaptive_;
};

}  // namespace roar::cluster
