// Real query execution for cluster nodes.
//
// The emulated cluster answers sub-queries with the Definition-8 analytic
// cost model (count / rate). A MatchEngine replaces that model with the
// genuine article: an encrypted pps corpus in a MetadataStore plus a
// canned multi-predicate query, so a node serving a sub-query actually
// scans the metadata whose ring ids fall in the sub-query's
// responsibility window and reports the true match count and measured
// CPU time. Combined with a core::WorkerPool this is the node-side
// parallel execution engine: the scan runs off the event-loop thread.
//
// Thread safety: the store, encoder, and query are immutable after
// construction; execute() builds per-call (or per-batch) evaluation
// state, so any number of workers may call it concurrently.
//
// Because every responsibility window of a completed query partitions the
// ring exactly (§4.2), the per-part match counts of one query always sum
// to the full-store match count — which is what makes results identical
// across worker-pool sizes and what the determinism test asserts.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/ring_id.h"
#include "pps/corpus.h"
#include "pps/predicates.h"
#include "pps/store.h"

namespace roar::cluster {

struct MatchEngineConfig {
  size_t corpus_items = 20'000;
  uint64_t corpus_seed = 7;
  uint64_t encoder_seed = 2026;
  // Zipf rank of the queried keyword: low ranks are frequent words (many
  // matches). 0 builds the §5.7 zero-match workload instead.
  uint64_t query_word_rank = 8;
};

class MatchEngine {
 public:
  explicit MatchEngine(const MatchEngineConfig& config);

  struct Window {
    Arc arc;            // ids to match, (window_begin, window_end]
    bool whole = false; // whole-store sub-query (single-part plans)
  };

  struct Result {
    uint64_t scanned = 0;
    uint64_t matches = 0;
    double cpu_s = 0.0;  // measured wall time of the scan
  };

  // Scans one window. Thread-safe.
  Result execute(const Window& window) const;

  // Scans a batch sharing one evaluation (predicate-ordering state) —
  // the amortization a node gets from draining several pending
  // sub-queries per wakeup. Results align with `windows` by index.
  std::vector<Result> execute_batch(const std::vector<Window>& windows) const;

  size_t store_size() const { return store_.size(); }

  // Match count over the whole store — the invariant total that every
  // completed query's parts must sum to.
  uint64_t full_store_matches() const;

 private:
  Result run_slice(const pps::MetadataStore::RangeSlice& slice,
                   pps::MultiPredicateQuery::Evaluation& eval) const;

  pps::SecretKey key_;
  pps::MetadataEncoder encoder_;
  pps::MetadataStore store_;
  std::optional<pps::MultiPredicateQuery> query_;
};

}  // namespace roar::cluster
