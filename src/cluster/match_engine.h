// Real query execution for cluster nodes.
//
// The emulated cluster answers sub-queries with the Definition-8 analytic
// cost model (count / rate). A MatchEngine replaces that model with the
// genuine article: an encrypted pps corpus in a MetadataStore plus a
// canned multi-predicate query, so a node serving a sub-query actually
// scans the metadata whose ring ids fall in the sub-query's
// responsibility window and reports the true match count and measured
// CPU time. Combined with a core::WorkerPool this is the node-side
// parallel execution engine: the scan runs off the event-loop thread.
//
// Live ingestion: the boot corpus is one immutable base store shared by
// every replica; each replica layers its own pps::VersionedStore over it
// (see cluster/ingest.h). execute() then takes the replica's pinned
// StoreSnapshot and scans base + delta segments, skipping tombstoned ids
// — results depend only on the snapshot's live content, never on overlay
// layout or compaction state.
//
// Thread safety: the engine itself (store, encoder, query) is immutable
// after construction; execute() builds per-call (or per-batch) evaluation
// state, so any number of workers may call it concurrently. Snapshots are
// immutable too — pin one per batch on the loop thread and hand it to the
// lanes.
//
// Because every responsibility window of a completed query partitions the
// ring exactly (§4.2), the per-part match counts of one query always sum
// to the full-store match count — which is what makes results identical
// across worker-pool sizes and what the determinism test asserts.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/ring_id.h"
#include "pps/corpus.h"
#include "pps/predicates.h"
#include "pps/store.h"
#include "pps/versioned_store.h"

namespace roar::cluster {

struct MatchEngineConfig {
  size_t corpus_items = 20'000;
  uint64_t corpus_seed = 7;
  uint64_t encoder_seed = 2026;
  // Zipf rank of the queried keyword: low ranks are frequent words (many
  // matches). 0 builds the §5.7 zero-match workload instead.
  uint64_t query_word_rank = 8;
};

class MatchEngine {
 public:
  explicit MatchEngine(const MatchEngineConfig& config);

  struct Window {
    Arc arc;            // ids to match, (window_begin, window_end]
    bool whole = false; // whole-store sub-query (single-part plans)
  };

  struct Result {
    uint64_t scanned = 0;
    uint64_t matches = 0;
    double cpu_s = 0.0;  // measured wall time of the scan
  };

  // Scans one window of the boot corpus. Thread-safe.
  Result execute(const Window& window) const;

  // Scans one window of a replica's versioned view: base + delta, minus
  // tombstones. `scanned` counts live documents only, so two replicas at
  // the same version report identical results regardless of compaction.
  Result execute(const Window& window, const pps::StoreSnapshot& snap) const;

  // Scans a batch sharing one evaluation (predicate-ordering state) —
  // the amortization a node gets from draining several pending
  // sub-queries per wakeup. Results align with `windows` by index.
  // `snaps` (when given) aligns by index too; a null entry means the boot
  // corpus.
  std::vector<Result> execute_batch(const std::vector<Window>& windows) const;
  std::vector<Result> execute_batch(
      const std::vector<Window>& windows,
      const std::vector<std::shared_ptr<const pps::StoreSnapshot>>& snaps)
      const;

  size_t store_size() const { return base_->size(); }

  // The immutable boot corpus, shared as the base layer of every
  // replica's VersionedStore.
  std::shared_ptr<const pps::MetadataStore> base_store() const {
    return base_;
  }

  // Encrypts one ingested document under this engine's key with a
  // deterministic randomness stream, so every replica producing metadata
  // for (doc, id, enc_seed) produces identical bytes.
  pps::EncryptedFileMetadata encrypt_document(const pps::FileInfo& doc,
                                              RingId id,
                                              uint64_t enc_seed) const;

  // Match count over the whole store — the invariant total that every
  // completed query's parts must sum to.
  uint64_t full_store_matches() const;
  // Same, over a versioned view.
  uint64_t full_store_matches(const pps::StoreSnapshot& snap) const;

 private:
  Result run_slice(const pps::MetadataStore& store,
                   const pps::MetadataStore::RangeSlice& slice,
                   const pps::StoreSnapshot* skip_dead,
                   pps::MultiPredicateQuery::Evaluation& eval) const;
  Result run_window(const Window& window, const pps::StoreSnapshot* snap,
                    pps::MultiPredicateQuery::Evaluation& eval) const;

  pps::SecretKey key_;
  pps::MetadataEncoder encoder_;
  std::shared_ptr<const pps::MetadataStore> base_;
  std::optional<pps::MultiPredicateQuery> query_;
};

}  // namespace roar::cluster
