// Live index ingestion & replica synchronization (§6.3, §7.4).
//
// The seed system loaded an immutable corpus at boot; this subsystem turns
// the cluster into a read/write search index that keeps answering queries
// (and reconfiguring, and surviving chaos-scenario faults) while documents
// are added and removed.
//
// Roles:
//
//  * IngestRouter — lives with the front-end on the control process, bound
//    at kUpdateServerAddr. Accepts AddDocument/DeleteDocument, assigns each
//    op a per-shard monotonically increasing log sequence number (LSN),
//    appends it to the shard's retained log, applies it to its own
//    reference VersionedStore (the authoritative materialized state), and
//    replicates it as an UpdateMsg to every current replica of the owning
//    shard. It also serves anti-entropy: SYNC_REQ in, SYNC_DATA out —
//    incremental log suffix when the requester is close, full-segment
//    state transfer when its LSN predates the retained log.
//
//  * IngestLog — one per storage node. Applies ops in strict LSN order per
//    shard to the node's own pps::VersionedStore (copy-on-write over the
//    engine's shared base corpus), buffers out-of-order arrivals, acks its
//    applied watermark, and runs a periodic SyncSession: for every shard
//    its stored arc intersects, ask the router for anything after its
//    applied LSN. That one mechanism recovers from dropped updates,
//    crashes + revivals, partitions, joins, and range movement — a replica
//    converges whenever it can exchange two messages with the router.
//
// Sharding: ingestion uses a FIXED number of equal ring arcs (`shards`),
// independent of the query partitioning p (which reconfigures on the fly).
// A node replicates shard s iff its stored object arc intersects s's arc;
// it then applies s's WHOLE history, so any two replicas of s hold
// byte-identical live state for s — that is what makes the convergence
// invariant ("identical applied-LSN and identical match results per
// shard") checkable, and it strictly contains the per-document replica
// set, so no query can miss an ingested document.
//
// Determinism: an added document's ciphertext is produced independently by
// every replica from (doc fields, doc_id, enc_seed) — the router picks
// enc_seed, each replica seeds its encoder Rng with it, so replicas agree
// byte-for-byte without shipping ciphertexts.
//
// Threading: everything here runs on the owning endpoint's loop thread.
// The only cross-thread artifact is the StoreSnapshot a node pins per
// sub-query batch and hands to MatchEngine worker lanes (see
// pps/versioned_store.h for the snapshot-swap contract).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "cluster/match_engine.h"
#include "cluster/protocol.h"
#include "common/rng.h"
#include "core/reconfig.h"
#include "core/tracer.h"
#include "net/transport.h"
#include "pps/versioned_store.h"

namespace roar::cluster {

struct IngestConfig {
  // Fixed ingest partitioning of the ring (NOT the query p).
  uint32_t shards = 8;
  // Replica anti-entropy period: every interval, a node asks the router
  // for news on every shard it covers.
  double sync_interval_s = 0.25;
  // Ops retained per shard log; a SYNC_REQ from further behind gets a
  // full-segment transfer instead of an incremental suffix.
  size_t log_retain = 1024;
  // VersionedStore overlay entries before the node folds delta +
  // tombstones into a fresh base segment.
  size_t compact_overlay = 512;

  // --- flow control (windowed, credit-based write path) -------------------
  // Replication window: outstanding unacked UPDATEs per destination node
  // are capped by an AIMD congestion window in [1, window_max]. Additive
  // increase per clean credit return (≈ +window_additive per window's
  // worth of acks), multiplicative decrease by window_beta on a
  // retransmit timeout. Ops beyond the window queue at the router and
  // drain as UPDATE_ACK watermarks return credit.
  double window_initial = 4.0;
  double window_max = 64.0;
  double window_additive = 1.0;
  double window_beta = 0.5;
  // Per-op retransmit: an unacked UPDATE is resent after its RTO
  // (doubling from rto_initial_s up to rto_max_s) at most retransmit_max
  // times, then abandoned to anti-entropy. The scan timer runs every
  // retransmit_tick_s while anything is outstanding.
  double rto_initial_s = 0.05;
  double rto_backoff = 2.0;
  double rto_max_s = 1.0;
  uint32_t retransmit_max = 6;
  double retransmit_tick_s = 0.025;
  // Sync chunk budget: one SYNC_DATA reply carries at most sync_chunk_ops
  // ops and stops growing once sync_chunk_bytes of encoded op payload is
  // reached (at least one op always ships). Keeps every frame far below
  // net::kMaxFrameBytes and lets the receiver credit-clock the stream.
  size_t sync_chunk_ops = 64;
  size_t sync_chunk_bytes = 256 * 1024;
  // Credit pacing: after applying one sync chunk the replica waits this
  // long before requesting the next, bounding the rate at which a
  // background resync steals matching capacity (§7.3.4) from queries.
  // 0 = pull the next chunk immediately.
  double sync_credit_delay_s = 0.02;
  // Out-of-order buffer cap per (shard, replica): at the cap the largest
  // buffered LSN is evicted (counted in pending_evictions) and the gap
  // healed by resync instead of unbounded buffering.
  size_t pending_cap = 128;
};

// Shard geometry. shard_of(id) is the s with shard_arc(s).contains(id);
// the `shards` arcs tile the ring exactly.
uint32_t shard_of(RingId id, uint32_t shards);
Arc shard_arc(uint32_t shard, uint32_t shards);

class IngestRouter;

// Issues one random workload op against the router: with probability
// `delete_frac` (and a non-empty index) the delete of a random live doc,
// otherwise the add of a deterministic synthetic document. The single
// sampler shared by harness streams and scenario events, so bench and
// chaos workloads cannot drift apart.
void issue_random_ingest_op(IngestRouter& router, Rng& rng,
                            double delete_frac);

// ------------------------------------------------------------------ router

class IngestRouter {
 public:
  // `ring` must return the authoritative membership ring (positions,
  // liveness); `safe_p` the current safe partitioning level — together
  // they define each shard's current replica set.
  using RingProvider = std::function<core::Ring()>;
  using PProvider = std::function<uint32_t()>;

  IngestRouter(net::Transport& net, IngestConfig cfg, uint64_t seed,
               std::shared_ptr<const MatchEngine> engine, RingProvider ring,
               PProvider safe_p);
  ~IngestRouter();

  // Binds kUpdateServerAddr (acks and sync requests arrive there).
  void start();

  // --- client face -------------------------------------------------------
  // Logs, applies and replicates one op. add_document assigns the ring id
  // and encryption seed and returns the id (callers keep it to delete).
  RingId add_document(const pps::FileInfo& doc);
  // False iff `doc_id` names no live document (unknown or already
  // deleted); nothing is logged then.
  bool delete_document(RingId doc_id);

  // --- state -------------------------------------------------------------
  uint32_t shards() const { return cfg_.shards; }
  const IngestConfig& config() const { return cfg_; }
  // Latest LSN issued for `shard` (0 = none yet).
  uint64_t issued_lsn(uint32_t shard) const;
  // Last applied-LSN `node` acked for `shard` (0 = never acked).
  uint64_t acked_lsn(uint32_t shard, NodeId node) const;
  // Min acked LSN over the shard's *current* replicas — the replication
  // watermark: everything at or below it is applied cluster-wide.
  uint64_t watermark(uint32_t shard) const;
  // The authoritative materialized state (reference for probes).
  const pps::VersionedStore& reference() const { return ref_; }
  const MatchEngine& engine() const { return *engine_; }
  // Ids of currently live (added and not deleted) ingested documents.
  std::vector<RingId> live_docs() const;

  // --- flow-control observability ----------------------------------------
  // Congestion state of the replication stream to one destination node.
  struct FlowStats {
    double cwnd = 0.0;     // AIMD window, in [1, window_max]
    size_t in_flight = 0;  // sent, unacked, not yet abandoned
    size_t queued = 0;     // committed ops waiting for window credit
  };
  FlowStats flow(NodeId node) const;

  // --- observability -----------------------------------------------------
  // Attaches the cluster tracer; `shard` is the trace ring the router
  // writes (it shares the control process's loop — shard 0 under both
  // harnesses). Each committed op gets ingest_trace_id(shard, lsn) and a
  // kUpdateIssued span; each served sync chunk gets a kSyncChunk span on
  // the clocking request's sync_trace_id.
  void set_tracer(core::Tracer* tracer, size_t trace_shard) {
    tracer_ = tracer;
    trace_shard_ = trace_shard;
  }

  // --- counters ----------------------------------------------------------
  uint64_t ops_accepted() const { return ops_accepted_; }
  uint64_t updates_sent() const { return updates_sent_; }
  uint64_t syncs_served() const { return syncs_served_; }
  uint64_t full_segments_sent() const { return full_segments_sent_; }
  uint64_t retransmits() const { return retransmits_; }
  uint64_t loss_events() const { return loss_events_; }
  // Ops the flow layer gave up on (retry budget spent or log trimmed);
  // anti-entropy heals them.
  uint64_t flow_abandoned() const { return flow_abandoned_; }
  uint64_t sync_chunks_sent() const { return sync_chunks_sent_; }

 private:
  struct Shard {
    uint64_t next_lsn = 1;
    uint64_t log_head = 1;  // LSN of log.front() when non-empty
    std::deque<UpdateMsg> log;
    // Authoritative live state, for full-segment transfers: add ops of
    // live ingested docs (by raw id) + deleted boot-corpus ids.
    std::map<uint64_t, UpdateMsg> live_adds;
    std::set<uint64_t> deleted_base;
  };

  // One in-flight UPDATE to one destination.
  struct OutOp {
    double sent_at = 0.0;
    double rto_s = 0.0;
    uint32_t retries = 0;
  };
  // Per-destination congestion state. `outstanding` is keyed (shard, lsn)
  // so an UPDATE_ACK's watermark clears every covered entry in one sweep.
  struct Peer {
    double cwnd = 1.0;
    std::map<std::pair<uint32_t, uint64_t>, OutOp> outstanding;
    std::deque<std::pair<uint32_t, uint64_t>> queue;
  };

  void handle(net::Address from, net::ByteView payload);
  void on_ack(const UpdateAckMsg& m);
  void on_sync_req(const SyncReqMsg& m);
  // Assigns the LSN, catalogs, trims the log, applies to the reference
  // store, and replicates to the shard's current replicas.
  void commit(UpdateMsg op);
  void apply_to_reference(const UpdateMsg& op);
  std::vector<NodeId> replicas_of(uint32_t shard) const;
  // --- flow control -------------------------------------------------------
  Peer& peer(NodeId id);
  // Window-gated replication of one committed op to one destination.
  void offer(NodeId to, uint32_t shard, uint64_t lsn);
  // Sends from the retained log; false when the LSN was trimmed away.
  bool send_logged(NodeId to, uint32_t shard, uint64_t lsn);
  // Drains the peer's queue into the (possibly re-grown) window.
  void pump(NodeId id, Peer& p);
  void arm_retransmit();
  void retransmit_scan();

  void trace_event(uint64_t trace, core::TraceStage stage, uint32_t actor,
                   uint32_t part, uint32_t aux = 0);

  net::Transport& net_;
  IngestConfig cfg_;
  std::shared_ptr<const MatchEngine> engine_;
  RingProvider ring_;
  PProvider safe_p_;
  core::Tracer* tracer_ = nullptr;
  size_t trace_shard_ = 0;
  Rng rng_;
  std::vector<Shard> shards_;
  pps::VersionedStore ref_;
  std::map<std::pair<uint32_t, NodeId>, uint64_t> acked_;
  std::map<NodeId, Peer> peers_;
  uint64_t retransmit_timer_ = 0;
  bool retransmit_armed_ = false;
  uint64_t ops_accepted_ = 0;
  uint64_t updates_sent_ = 0;
  uint64_t syncs_served_ = 0;
  uint64_t full_segments_sent_ = 0;
  uint64_t retransmits_ = 0;
  uint64_t loss_events_ = 0;
  uint64_t flow_abandoned_ = 0;
  uint64_t sync_chunks_sent_ = 0;
};

// ----------------------------------------------------------------- replica

class IngestLog {
 public:
  struct Hooks {
    // The node's current stored object arc (range extended 1/p back) —
    // defines which shards this replica covers.
    std::function<Arc()> stored_arc;
    // Charges one applied op's cost against the node's matching capacity
    // (§7.3.4: updates steal matching time).
    std::function<void()> charge;
    std::function<bool()> alive;
  };

  IngestLog(net::Transport& net, NodeId node, IngestConfig cfg,
            std::shared_ptr<const MatchEngine> engine);
  ~IngestLog();

  void set_hooks(Hooks hooks) { hooks_ = std::move(hooks); }

  // Lifecycle, driven by the owning NodeRuntime. The log (like the data
  // it stores) SURVIVES a crash: on_kill only stops the sync timer; a
  // revived node resumes from its applied LSNs and catches up.
  void on_start();
  void on_kill();

  // Message entry points (loop thread).
  void on_update(const UpdateMsg& m);
  void on_sync_data(const SyncDataMsg& m);

  // Attaches the cluster tracer; `shard` is the trace ring this replica
  // writes — its owning node's reactor shard (NodeRuntime::set_tracer
  // forwards here). Applied ops record kUpdateApplied on the op's trace
  // id; sync requests record kSyncReq on sync_trace_id(node, shard).
  void set_tracer(core::Tracer* tracer, size_t trace_shard) {
    tracer_ = tracer;
    trace_shard_ = trace_shard;
  }

  // The versioned view sub-query resolution pins per batch.
  std::shared_ptr<const pps::StoreSnapshot> snapshot() const {
    return store_.snapshot();
  }
  pps::VersionedStore& store() { return store_; }

  // Contiguously applied LSN for `shard` (0 = nothing applied).
  uint64_t applied_lsn(uint32_t shard) const;
  std::map<uint32_t, uint64_t> applied() const;

  uint64_t ops_applied() const { return ops_applied_; }
  uint64_t duplicates_dropped() const { return duplicates_dropped_; }
  uint64_t gaps_buffered() const { return gaps_buffered_; }
  uint64_t syncs_requested() const { return syncs_requested_; }
  uint64_t full_segments_applied() const { return full_segments_applied_; }
  uint64_t stale_syncs_dropped() const { return stale_syncs_dropped_; }
  // Out-of-order buffer accounting: evictions past pending_cap, and the
  // buffer-size high-water mark (always <= pending_cap — the bounded-
  // buffer invariant the chaos soak asserts).
  uint64_t pending_evictions() const { return pending_evictions_; }
  size_t pending_hwm() const { return pending_hwm_; }
  size_t pending_size(uint32_t shard) const;
  // Chunked full-segment transfer accounting.
  uint64_t full_chunks_received() const { return full_chunks_received_; }
  uint64_t sync_chunks_dropped() const { return sync_chunks_dropped_; }

 private:
  struct ShardState {
    uint64_t applied = 0;
    std::map<uint64_t, UpdateMsg> pending;  // out-of-order buffer (capped)
    // Chunked full-segment accumulation. A stream is pinned to the
    // generation (`full_gen` = the segment's issued LSN); chunks append
    // in order and the segment reconciles only once complete.
    bool full_active = false;
    uint64_t full_gen = 0;
    uint64_t full_total = 0;
    std::vector<UpdateMsg> full_buf;
  };

  // `charge` = false applies an op whose capacity cost was already paid
  // at chunk receipt (full-segment streams charge per chunk so the cost
  // is spread across the paced transfer, not burst at reconcile time).
  void apply(const UpdateMsg& m, bool charge = true);
  // Reconciles local shard state with an authoritative full segment
  // (compaction-safe: works even when ingested docs were folded into the
  // replica's base segment).
  void apply_full_segment(uint32_t shard, std::span<const UpdateMsg> ops);
  // Capped out-of-order insert; evicts the largest LSN past pending_cap.
  void buffer_pending(ShardState& st, const UpdateMsg& m, bool count_gap);
  // Applies buffered ops that became contiguous; acks the new watermark.
  void drain_and_ack(uint32_t shard);
  // Carries the chunk-resume fields when a full-segment stream is active.
  void request_sync(uint32_t shard);
  // Credit return for a chunked stream: re-requests after
  // sync_credit_delay_s (immediately when the delay is 0).
  void schedule_chunk_request(uint32_t shard);
  // True when a full-segment stream other than `shard`'s is mid-flight.
  // Full transfers are serialized PER REPLICA: the pacing budget bounds
  // the node's total resync capacity, not one shard's share of it.
  bool full_stream_busy(uint32_t shard) const;
  // Starts the next queued full-segment catch-up, if any.
  void kick_full_wait();
  void sync_tick();

  void trace_event(uint64_t trace, core::TraceStage stage, uint32_t part,
                   uint32_t aux = 0);

  net::Transport& net_;
  NodeId node_;
  IngestConfig cfg_;
  std::shared_ptr<const MatchEngine> engine_;
  Hooks hooks_;
  pps::VersionedStore store_;
  std::map<uint32_t, ShardState> shards_;
  core::Tracer* tracer_ = nullptr;
  size_t trace_shard_ = 0;
  uint64_t timer_id_ = 0;
  bool running_ = false;
  uint64_t ops_applied_ = 0;
  uint64_t duplicates_dropped_ = 0;
  uint64_t gaps_buffered_ = 0;
  uint64_t syncs_requested_ = 0;
  uint64_t full_segments_applied_ = 0;
  uint64_t stale_syncs_dropped_ = 0;
  uint64_t pending_evictions_ = 0;
  size_t pending_hwm_ = 0;
  uint64_t full_chunks_received_ = 0;
  uint64_t sync_chunks_dropped_ = 0;
  // Shards whose full-segment catch-up is deferred behind the one
  // active stream (per-replica serialization).
  std::set<uint32_t> full_wait_;
};

// ------------------------------------------------------------- invariants

// One live replica's view, for the convergence/safety reports. `stored`
// is the node's current stored object arc.
struct IngestReplicaView {
  NodeId node = 0;
  const IngestLog* log = nullptr;
  Arc stored;
};

// Safety: properties that must hold at ANY instant, mid-stream included —
// no replica's applied LSN exceeds the router's issued LSN, and no acked
// watermark exceeds what the replica actually applied. Returns
// human-readable violations (empty = clean).
std::vector<std::string> ingest_safety_report(
    const IngestRouter& router, std::span<const IngestReplicaView> replicas);

// Convergence: quiescent-state equality. For every shard, every current
// replica has applied exactly the router's issued LSN, and (when
// `probe_matches`) scanning the shard's arc through the replica's
// snapshot yields the identical (live-scanned, matches) the router's
// reference state yields. Empty = fully converged; used as the
// settle-window invariant by the scenario engine and as the wait
// predicate by harness drain loops.
std::vector<std::string> ingest_convergence_report(
    const IngestRouter& router, std::span<const IngestReplicaView> replicas,
    bool probe_matches);

}  // namespace roar::cluster
