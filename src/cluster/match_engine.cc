#include "cluster/match_engine.h"

#include <array>
#include <chrono>

#include "common/rng.h"

namespace roar::cluster {
namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

MatchEngine::MatchEngine(const MatchEngineConfig& config)
    : key_(pps::SecretKey::from_seed(config.encoder_seed)),
      encoder_(key_, pps::MetadataEncoderParams::keyword_only()) {
  pps::CorpusParams cp;
  cp.content_keywords_per_file = 2;
  cp.max_path_depth = 3;
  pps::CorpusGenerator gen(cp, config.corpus_seed);
  auto files = gen.generate(config.corpus_items);
  Rng rng(config.corpus_seed);
  auto store = std::make_shared<pps::MetadataStore>(4096);
  store->load(pps::encrypt_corpus(encoder_, files, rng));
  base_ = std::move(store);

  std::vector<pps::Predicate> preds;
  if (config.query_word_rank > 0) {
    preds.push_back(pps::make_keyword_predicate(
        encoder_, pps::CorpusGenerator::word(config.query_word_rank)));
  } else {
    preds.push_back(pps::make_keyword_predicate(encoder_, "zz_nomatch_0"));
    preds.push_back(pps::make_keyword_predicate(encoder_, "zz_nomatch_1"));
  }
  query_.emplace(pps::Combiner::kAnd, std::move(preds));
}

pps::EncryptedFileMetadata MatchEngine::encrypt_document(
    const pps::FileInfo& doc, RingId id, uint64_t enc_seed) const {
  Rng rng(enc_seed);
  pps::EncryptedFileMetadata m = encoder_.encrypt(doc, rng);
  m.id = id;
  return m;
}

MatchEngine::Result MatchEngine::run_slice(
    const pps::MetadataStore& store,
    const pps::MetadataStore::RangeSlice& slice,
    const pps::StoreSnapshot* skip_dead,
    pps::MultiPredicateQuery::Evaluation& eval) const {
  Result res;
  const auto& items = store.items();
  pps::MatchCost cost;
  auto t0 = std::chrono::steady_clock::now();
  // Live items accumulate into fixed-size batches for the evaluation's
  // batched (AES-NI multi-block) path; results are order-independent so
  // batching across extent boundaries is safe.
  constexpr size_t kBatch = 64;
  std::array<const pps::EncryptedFileMetadata*, kBatch> batch;
  std::array<uint8_t, kBatch> verdicts;
  size_t nb = 0;
  auto flush = [&] {
    eval.match_batch({batch.data(), nb}, verdicts.data(), &cost);
    for (size_t k = 0; k < nb; ++k) res.matches += verdicts[k];
    nb = 0;
  };
  for (auto [first, last] : slice.extents) {
    for (size_t i = first; i < last; ++i) {
      if (skip_dead && skip_dead->is_dead(items[i].id)) continue;
      ++res.scanned;
      batch[nb++] = &items[i];
      if (nb == kBatch) flush();
    }
  }
  if (nb > 0) flush();
  res.cpu_s = seconds_since(t0);
  if (!skip_dead) res.scanned = slice.count;
  return res;
}

MatchEngine::Result MatchEngine::run_window(
    const Window& window, const pps::StoreSnapshot* snap,
    pps::MultiPredicateQuery::Evaluation& eval) const {
  if (!snap) {
    return run_slice(*base_,
                     window.whole ? base_->slice_all()
                                  : base_->slice(window.arc),
                     nullptr, eval);
  }
  // Versioned view: the base segment, then the delta segment, both minus
  // tombstones. Adding cpu times keeps the measurement honest for the
  // speed estimator.
  Result res;
  auto scan = [&](const std::shared_ptr<const pps::MetadataStore>& store) {
    if (!store || store->size() == 0) return;
    Result part = run_slice(
        *store, window.whole ? store->slice_all() : store->slice(window.arc),
        snap, eval);
    res.scanned += part.scanned;
    res.matches += part.matches;
    res.cpu_s += part.cpu_s;
  };
  scan(snap->base);
  scan(snap->delta);
  return res;
}

MatchEngine::Result MatchEngine::execute(const Window& window) const {
  auto eval = query_->evaluate();
  return run_window(window, nullptr, eval);
}

MatchEngine::Result MatchEngine::execute(
    const Window& window, const pps::StoreSnapshot& snap) const {
  auto eval = query_->evaluate();
  return run_window(window, &snap, eval);
}

std::vector<MatchEngine::Result> MatchEngine::execute_batch(
    const std::vector<Window>& windows) const {
  std::vector<Result> out;
  out.reserve(windows.size());
  auto eval = query_->evaluate();  // shared ordering state: one sampling
                                   // phase amortized over the batch
  for (const auto& w : windows) {
    out.push_back(run_window(w, nullptr, eval));
  }
  return out;
}

std::vector<MatchEngine::Result> MatchEngine::execute_batch(
    const std::vector<Window>& windows,
    const std::vector<std::shared_ptr<const pps::StoreSnapshot>>& snaps)
    const {
  std::vector<Result> out;
  out.reserve(windows.size());
  auto eval = query_->evaluate();
  for (size_t i = 0; i < windows.size(); ++i) {
    const pps::StoreSnapshot* snap =
        i < snaps.size() ? snaps[i].get() : nullptr;
    out.push_back(run_window(windows[i], snap, eval));
  }
  return out;
}

uint64_t MatchEngine::full_store_matches() const {
  Window whole;
  whole.whole = true;
  return execute(whole).matches;
}

uint64_t MatchEngine::full_store_matches(
    const pps::StoreSnapshot& snap) const {
  Window whole;
  whole.whole = true;
  return execute(whole, snap).matches;
}

}  // namespace roar::cluster
