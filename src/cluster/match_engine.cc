#include "cluster/match_engine.h"

#include <chrono>

#include "common/rng.h"

namespace roar::cluster {
namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

MatchEngine::MatchEngine(const MatchEngineConfig& config)
    : key_(pps::SecretKey::from_seed(config.encoder_seed)),
      encoder_(key_, pps::MetadataEncoderParams::keyword_only()),
      store_(4096) {
  pps::CorpusParams cp;
  cp.content_keywords_per_file = 2;
  cp.max_path_depth = 3;
  pps::CorpusGenerator gen(cp, config.corpus_seed);
  auto files = gen.generate(config.corpus_items);
  Rng rng(config.corpus_seed);
  store_.load(pps::encrypt_corpus(encoder_, files, rng));

  std::vector<pps::Predicate> preds;
  if (config.query_word_rank > 0) {
    preds.push_back(pps::make_keyword_predicate(
        encoder_, pps::CorpusGenerator::word(config.query_word_rank)));
  } else {
    preds.push_back(pps::make_keyword_predicate(encoder_, "zz_nomatch_0"));
    preds.push_back(pps::make_keyword_predicate(encoder_, "zz_nomatch_1"));
  }
  query_.emplace(pps::Combiner::kAnd, std::move(preds));
}

MatchEngine::Result MatchEngine::run_slice(
    const pps::MetadataStore::RangeSlice& slice,
    pps::MultiPredicateQuery::Evaluation& eval) const {
  Result res;
  const auto& items = store_.items();
  pps::MatchCost cost;
  auto t0 = std::chrono::steady_clock::now();
  for (auto [first, last] : slice.extents) {
    for (size_t i = first; i < last; ++i) {
      if (eval.match(items[i], &cost)) ++res.matches;
    }
  }
  res.cpu_s = seconds_since(t0);
  res.scanned = slice.count;
  return res;
}

MatchEngine::Result MatchEngine::execute(const Window& window) const {
  auto eval = query_->evaluate();
  return run_slice(window.whole ? store_.slice_all() : store_.slice(window.arc),
                   eval);
}

std::vector<MatchEngine::Result> MatchEngine::execute_batch(
    const std::vector<Window>& windows) const {
  std::vector<Result> out;
  out.reserve(windows.size());
  auto eval = query_->evaluate();  // shared ordering state: one sampling
                                   // phase amortized over the batch
  for (const auto& w : windows) {
    out.push_back(
        run_slice(w.whole ? store_.slice_all() : store_.slice(w.arc), eval));
  }
  return out;
}

uint64_t MatchEngine::full_store_matches() const {
  Window whole;
  whole.whole = true;
  return execute(whole).matches;
}

}  // namespace roar::cluster
