#include "cluster/control.h"

#include <algorithm>

#include "common/logging.h"

namespace roar::cluster {

namespace {

// prev.members is canonically id-sorted; binary search keeps wave
// classification O(changes · log n) even for broad waves.
const core::ViewMember* find_member(const std::vector<core::ViewMember>& ms,
                                    NodeId id) {
  auto it = std::lower_bound(ms.begin(), ms.end(), id,
                             [](const core::ViewMember& m, NodeId want) {
                               return m.id < want;
                             });
  return it != ms.end() && it->id == id ? &*it : nullptr;
}

}  // namespace

ControlPlane::ControlPlane(net::Transport& net,
                           core::MembershipServer& membership,
                           ControlPlaneParams params)
    : net_(net),
      membership_(membership),
      params_(params),
      repl_(params.initial_p),
      storage_p_(params.initial_p),
      retain_(params.delta_log_retain) {
  view_.target_p = view_.safe_p = view_.storage_p = params.initial_p;
  if (params_.relay_fanout == 0) params_.relay_fanout = 1;
  if (params_.tree_divisor == 0) params_.tree_divisor = 1;
  if (params_.delta_log_retain_max < params_.delta_log_retain) {
    params_.delta_log_retain_max = params_.delta_log_retain;
  }
  if (params_.adaptive) {
    adaptive_.emplace(params_.adaptive_params);
  }
}

void ControlPlane::start() {
  net_.bind(kMembershipAddr, [this](net::Address from, net::Payload payload) {
    handle(from, payload);
  });
  if (params_.retransmit_interval_s > 0) {
    net_.clock().schedule_after(params_.retransmit_interval_s,
                                [this] { retransmit_tick(); });
  }
  if (adaptive_) {
    net_.clock().schedule_after(params_.adaptive_interval_s,
                                [this] { adaptive_tick(); });
  }
}

void ControlPlane::subscribe_node(NodeId id) {
  net::Address addr = node_address(id);
  laggards_.erase(addr);  // re-subscription starts from a clean slate
  Subscriber s;
  s.id = id;
  subs_[addr] = std::move(s);
  tree_dirty_ = true;
}

void ControlPlane::subscribe_frontend(net::Address addr) {
  auto it = subs_.find(addr);
  if (it != subs_.end()) {
    frontend_acked_.erase({it->second.acked, addr});
  }
  laggards_.erase(addr);
  Subscriber s;
  s.is_frontend = true;
  subs_[addr] = std::move(s);
  frontend_acked_.insert({0, addr});
}

void ControlPlane::unsubscribe(net::Address addr) {
  auto it = subs_.find(addr);
  if (it != subs_.end()) {
    if (it->second.is_frontend) {
      frontend_acked_.erase({it->second.acked, addr});
    }
    subs_.erase(it);
  }
  laggards_.erase(addr);
  tree_dirty_ = true;
  maybe_clear_drop_gate();  // a departed front-end leaves the gate
}

void ControlPlane::set_frontend_down(net::Address addr, bool down) {
  auto it = subs_.find(addr);
  if (it == subs_.end()) return;
  Subscriber& s = it->second;
  if (down) {
    frontend_acked_.erase({s.acked, addr});
    laggards_.erase(addr);
  } else {
    frontend_acked_.insert({s.acked, addr});
    if (s.acked < s.expected) laggards_.insert(addr);
  }
  s.down = down;
  // A crashed front-end cannot hold surplus drops hostage: it re-syncs
  // through kViewPull before serving again, so it never plans at a p the
  // nodes stopped storing for.
  if (down) maybe_clear_drop_gate();
}

void ControlPlane::set_warming(NodeId id, bool warming) {
  if (warming) {
    warming_.insert(id);
  } else {
    warming_.erase(id);
  }
}

core::ClusterView ControlPlane::capture(uint64_t epoch) const {
  return core::ClusterView::capture(epoch, membership_.ring(0), repl_,
                                    storage_p_, warming_);
}

ControlPlane::WaveScope ControlPlane::classify_wave(
    const core::ClusterView& prev, const core::ClusterView& next,
    const core::ViewDelta& d) const {
  WaveScope s;
  s.broad = d.full || prev.target_p != next.target_p ||
            prev.safe_p != next.safe_p || prev.storage_p != next.storage_p;
  for (const auto& up : d.upserts) {
    s.touched.push_back(up.position);
    s.touched_ids.push_back(up.id);
    const core::ViewMember* was = find_member(prev.members, up.id);
    if (!was || was->alive != up.alive) s.members_changed = true;
    if (was && was->position != up.position) s.touched.push_back(was->position);
  }
  for (NodeId id : d.removes) {
    s.touched_ids.push_back(id);
    s.members_changed = true;
    if (const auto* was = find_member(prev.members, id)) {
      s.touched.push_back(was->position);
    }
  }
  // Entering or leaving the §4.5 pending set concerns exactly that node
  // (it must start, or stop re-reporting, its fetch).
  std::set_symmetric_difference(prev.pending.begin(), prev.pending.end(),
                                next.pending.begin(), next.pending.end(),
                                std::back_inserter(s.touched_ids));
  return s;
}

bool ControlPlane::is_interested(const Subscriber& sub,
                                 const WaveScope& scope) const {
  if (scope.broad || !sub.has_interest) return true;
  for (NodeId id : scope.touched_ids) {
    if (id == sub.id) return true;
  }
  for (RingId point : scope.touched) {
    for (const Arc& a : sub.interest) {
      if (a.contains(point)) return true;
    }
  }
  return false;
}

void ControlPlane::publish() {
  core::ClusterView next = capture(view_.epoch + 1);
  if (next.same_state(view_)) return;  // nothing to tell anyone
  core::ViewDelta d = core::view_diff(view_, next);
  WaveScope scope = classify_wave(view_, next, d);
  if (scope.members_changed) tree_dirty_ = true;
  view_ = std::move(next);
  delta_log_.push_back(d);
  trim_log();
  disseminate(d, scope);
}

void ControlPlane::disseminate(const core::ViewDelta& d,
                               const WaveScope& scope) {
  // Front-ends: every epoch, direct, individually acked — the §4.5 drop
  // gate and the end-of-run convergence audit key off their watermarks.
  {
    net::Bytes payload;
    for (auto& [addr, sub] : subs_) {
      if (!sub.is_frontend || sub.down) continue;
      if (payload.empty()) {
        ViewDeltaMsg msg;
        msg.delta = d;
        payload = msg.encode();
      }
      send_raw(addr, payload);
      mark_expected(addr, sub);
    }
  }
  // Node subscribers: slice the wave down to the interested set, or relay
  // it through the tree when (nearly) everyone cares.
  size_t node_subs = 0;
  std::vector<std::pair<net::Address, Subscriber*>> interested;
  for (auto& [addr, sub] : subs_) {
    if (sub.is_frontend || sub.down) continue;
    ++node_subs;
    if (is_interested(sub, scope)) interested.emplace_back(addr, &sub);
  }
  if (node_subs == 0) return;
  bool tree = scope.broad ||
              interested.size() * params_.tree_divisor >= node_subs;
  if (!tree) {
    interest_skips_ += node_subs - interested.size();
    for (auto& [addr, sub] : interested) send_compact_to(addr, *sub);
    return;
  }
  if (tree_dirty_) rebuild_tree();
  for (Root& r : tree_) send_wave_to_root(r);
  last_tree_epoch_ = view_.epoch;
}

void ControlPlane::rebuild_tree() {
  tree_dirty_ = false;
  ++tree_rebuilds_;
  // Live ring members with a subscription, address-sorted for determinism
  // and rotated by the build epoch so relay roles shuffle across rebuilds.
  std::vector<net::Address> targets;
  for (const auto& n : membership_.ring(0).nodes()) {
    if (!n.alive) continue;
    auto it = subs_.find(node_address(n.id));
    if (it == subs_.end() || it->second.down) continue;
    targets.push_back(node_address(n.id));
  }
  std::sort(targets.begin(), targets.end());
  if (!targets.empty()) {
    std::rotate(targets.begin(),
                targets.begin() +
                    static_cast<ptrdiff_t>(view_.epoch % targets.size()),
                targets.end());
  }
  std::map<net::Address, Root> old;
  for (Root& r : tree_) old.emplace(r.addr, std::move(r));
  tree_.clear();
  for (auto& b : relay::split(targets, params_.relay_fanout)) {
    Root r;
    r.addr = b.head;
    r.subtree = std::move(b.rest);
    auto it = old.find(r.addr);
    if (it != old.end()) {
      // Surviving roots keep their branch basis, pacing window and any
      // deferred wave.
      r.basis = it->second.basis;
      r.win = it->second.win;
      r.queued_wave = it->second.queued_wave;
    } else {
      // A fresh root's members converged through the old tree; anything
      // further behind gaps and pulls (the repair path).
      r.basis = last_tree_epoch_;
    }
    tree_.push_back(std::move(r));
  }
}

ViewDeltaMsg ControlPlane::delta_since(uint64_t basis) {
  ViewDeltaMsg msg;
  if (basis >= view_.epoch) {
    msg.delta = core::view_full_delta(view_);
    return msg;
  }
  uint64_t oldest_prev = view_.epoch - delta_log_.size();
  if (basis < oldest_prev) {
    msg.delta = core::view_full_delta(view_);
    return msg;
  }
  if (basis + 1 == view_.epoch) {
    msg.delta = delta_log_.back();
    return msg;
  }
  msg.delta = core::compact_log(delta_log_, basis, view_.epoch);
  compaction_folded_ += view_.epoch - basis;
  ++compaction_msgs_;
  return msg;
}

void ControlPlane::send_wave_to_root(Root& r) {
  auto it = subs_.find(r.addr);
  if (it == subs_.end() || it->second.down) return;
  if (!r.win.can_send()) {
    // Deferred; a newer wave supersedes an already-queued one (bounded
    // buffer of one), the AIMD signal that this branch is falling behind.
    if (r.queued_wave) r.win.on_supersede();
    r.queued_wave = true;
    mark_expected(r.addr, it->second);  // still owed: tick repairs a stall
    return;
  }
  ViewDeltaMsg msg = delta_since(r.basis);
  msg.relay_fanout = static_cast<uint8_t>(
      std::min<uint32_t>(params_.relay_fanout, 255));
  msg.relay_targets = r.subtree;
  send_raw(r.addr, msg.encode());
  r.win.on_sent(view_.epoch);
  r.basis = view_.epoch;
  r.queued_wave = false;
  mark_expected(r.addr, it->second);
}

void ControlPlane::send_compact_to(net::Address to, Subscriber& sub) {
  // A fresh subscriber (never pushed, never acked) has no basis to fold
  // from; start it with a snapshot.
  if (sub.expected == 0 && sub.acked == 0) {
    send_full(to);
    return;
  }
  // The subscriber saw every tree wave in addition to its direct pushes;
  // fold only what it is still owed. If a push was lost the basis is
  // ahead of its state and it gaps into a pull — the repair path.
  uint64_t basis = std::max(sub.expected, last_tree_epoch_);
  ViewDeltaMsg msg = delta_since(basis);
  send_raw(to, msg.encode());
  mark_expected(to, sub);
}

void ControlPlane::send_full(net::Address to) {
  ViewDeltaMsg msg;
  msg.delta = core::view_full_delta(view_);
  send_raw(to, msg.encode());
  auto it = subs_.find(to);
  if (it != subs_.end()) mark_expected(to, it->second);
}

void ControlPlane::send_raw(net::Address to, const net::Bytes& payload) {
  net_.send(kMembershipAddr, to, payload);
  ++deltas_sent_;
}

void ControlPlane::mark_expected(net::Address addr, Subscriber& sub) {
  sub.expected = view_.epoch;
  if (sub.acked < sub.expected) laggards_.insert(addr);
}

void ControlPlane::trim_log() {
  while (delta_log_.size() > retain_) delta_log_.pop_front();
}

void ControlPlane::adapt_retain() {
  // Size retention to twice the worst live lag (plus slack) so a laggard
  // that converges through the pull path gets one compacted suffix, not a
  // full snapshot. Growth is immediate, decay is halved-toward-demand so
  // one slow subscriber doesn't whipsaw the log.
  uint64_t lag = max_epoch_lag();
  size_t want =
      std::clamp<size_t>(2 * lag + 8, params_.delta_log_retain,
                         params_.delta_log_retain_max);
  if (want > retain_) {
    retain_ = want;
  } else {
    retain_ = std::max(want, retain_ - (retain_ - want + 1) / 2);
  }
  trim_log();
}

uint64_t ControlPlane::max_epoch_lag() const {
  uint64_t lag = 0;
  for (net::Address addr : laggards_) {
    auto it = subs_.find(addr);
    if (it == subs_.end() || it->second.down) continue;
    uint64_t d = it->second.expected > it->second.acked
                     ? it->second.expected - it->second.acked
                     : 0;
    lag = std::max(lag, d);
  }
  return lag;
}

ControlPlane::Root* ControlPlane::find_root(net::Address addr) {
  for (Root& r : tree_) {
    if (r.addr == addr) return &r;
  }
  return nullptr;
}

void ControlPlane::resync(bool everyone) {
  if (everyone) {
    ViewDeltaMsg msg;
    msg.delta = core::view_full_delta(view_);
    net::Bytes payload = msg.encode();  // shared by every recipient
    for (auto& [addr, sub] : subs_) {
      if (sub.down) continue;
      send_raw(addr, payload);
      mark_expected(addr, sub);
    }
    // Everyone now holds the current epoch directly; tree branches resume
    // folding from here.
    for (Root& r : tree_) r.basis = view_.epoch;
    return;
  }
  // Laggards only — O(laggards), not O(members). A lagging relay root may
  // be stalled by a descendant rather than itself: repair the whole
  // branch directly (each behind member then acks individually; the next
  // tree wave restores aggregation).
  std::vector<net::Address> behind(laggards_.begin(), laggards_.end());
  for (net::Address addr : behind) {
    auto it = subs_.find(addr);
    if (it == subs_.end()) {
      laggards_.erase(addr);
      continue;
    }
    if (it->second.down) continue;
    if (!it->second.is_frontend) {
      if (Root* r = find_root(addr); r && !r->subtree.empty()) {
        r->win.on_supersede();  // branch is not draining: halve its pace
        for (net::Address m : r->subtree) {
          auto ms = subs_.find(m);
          if (ms == subs_.end() || ms->second.down) continue;
          if (ms->second.acked < view_.epoch) send_full(m);
        }
      }
    }
    send_full(addr);
  }
}

void ControlPlane::commit_change(uint32_t p_new) {
  storage_p_ = p_new;
  ++p_changes_;
  publish();
  if (on_reconfigured) on_reconfigured(p_new);
}

void ControlPlane::order_p_change(uint32_t p_new) {
  if (p_new == 0) return;
  if (reconfig_busy()) {
    ROAR_LOG(kInfo) << "control: p change to " << p_new
                    << " ignored, reconfiguration in flight";
    return;
  }
  uint32_t p_old = repl_.safe_p();
  if (p_new == p_old) return;
  if (p_new > p_old) {
    // Increase: safe immediately (arcs only shrink), but nodes may drop
    // surplus data only once the aggregated front-end watermark reaches
    // the raising epoch.
    repl_.begin_change(p_new, {});
    bool any_frontend = !frontend_acked_.empty();
    publish();
    if (any_frontend) {
      drop_gate_ = {p_new, view_.epoch};
    } else {
      commit_change(p_new);
    }
    return;
  }
  // Decrease: every live node must fetch its extended arc and confirm
  // before the new, smaller p becomes safe. The pending set travels in
  // the view — receiving the epoch IS the fetch order.
  std::vector<NodeId> confirmers;
  for (const auto& n : membership_.ring(0).nodes()) {
    if (n.alive) confirmers.push_back(n.id);
  }
  repl_.begin_change(p_new, confirmers);
  if (!repl_.in_progress()) {
    // Zero live confirmers (everything crashed): the change completes
    // vacuously inside the controller, so commit — otherwise storage_p
    // would sit above safe_p forever with no gate pending.
    commit_change(repl_.safe_p());
  } else {
    publish();
  }
}

void ControlPlane::abandon_fetch(NodeId id) {
  if (!repl_.in_progress()) return;
  bool was_pending = repl_.pending().count(id) > 0;
  repl_.abandon(id);
  if (!was_pending) return;
  if (!repl_.in_progress()) {
    commit_change(repl_.safe_p());
  } else {
    publish();
  }
}

uint64_t ControlPlane::acked_epoch(net::Address addr) const {
  auto it = subs_.find(addr);
  return it != subs_.end() ? it->second.acked : 0;
}

void ControlPlane::handle(net::Address from, net::ByteView payload) {
  (void)from;
  auto type = peek_type(payload);
  if (!type) return;
  switch (*type) {
    case MsgType::kFetchComplete:
      if (auto m = FetchCompleteMsg::decode(payload)) on_fetch_complete(*m);
      break;
    case MsgType::kViewAck:
      if (auto m = ViewAckMsg::decode(payload)) on_view_ack(*m);
      break;
    case MsgType::kViewPull:
      if (auto m = ViewPullMsg::decode(payload)) on_view_pull(*m);
      break;
    case MsgType::kViewInterest:
      if (auto m = ViewInterestMsg::decode(payload)) on_view_interest(*m);
      break;
    case MsgType::kNodeStats:
      if (auto m = NodeStatsMsg::decode(payload)) on_node_stats(*m);
      break;
    default:
      break;
  }
}

void ControlPlane::on_fetch_complete(const FetchCompleteMsg& m) {
  if (!repl_.in_progress() || m.new_p != repl_.target_p()) return;
  if (repl_.pending().count(m.node) == 0) return;  // duplicate confirm
  repl_.confirm(m.node);
  if (!repl_.in_progress()) {
    // Last confirmation: the smaller p is now safe everywhere.
    commit_change(repl_.safe_p());
  } else {
    publish();  // pending set shrank; nodes track it through the view
  }
}

void ControlPlane::on_view_ack(const ViewAckMsg& m) {
  auto it = subs_.find(m.subscriber);
  if (it == subs_.end()) return;
  Subscriber& s = it->second;
  if (m.epoch > s.acked) {
    if (s.is_frontend && !s.down) {
      frontend_acked_.erase({s.acked, m.subscriber});
      frontend_acked_.insert({m.epoch, m.subscriber});
    }
    s.acked = m.epoch;
  }
  if (s.acked >= s.expected) laggards_.erase(m.subscriber);
  if (m.agg_count > 1) acks_aggregated_ += m.agg_count - 1;
  if (Root* r = find_root(m.subscriber)) {
    r->win.on_ack(m.epoch, m.agg_count);
    if (r->queued_wave && r->win.can_send()) {
      send_wave_to_root(*r);  // drain the deferred wave
      if (r->basis == view_.epoch) last_tree_epoch_ = view_.epoch;
    }
  }
  if (adaptive_ && s.is_frontend) {
    adaptive_->observe_latency(m.subscriber, net_.clock().now(), m.p99_s,
                               m.completed);
  }
  maybe_clear_drop_gate();
}

void ControlPlane::on_view_interest(const ViewInterestMsg& m) {
  auto it = subs_.find(m.subscriber);
  if (it == subs_.end() || it->second.is_frontend) return;
  it->second.interest = m.arcs;
  it->second.has_interest = !m.arcs.empty();
}

void ControlPlane::maybe_clear_drop_gate() {
  if (!drop_gate_) return;
  // The aggregated front-end watermark: minimum acked epoch over live
  // front-ends (none left clears the gate — nobody can plan at the old p).
  if (!frontend_acked_.empty() &&
      frontend_acked_.begin()->first < drop_gate_->second) {
    return;
  }
  uint32_t p_new = drop_gate_->first;
  drop_gate_.reset();
  ROAR_LOG(kInfo) << "control: drop gate cleared, storage_p=" << p_new;
  commit_change(p_new);
}

void ControlPlane::on_view_pull(const ViewPullMsg& m) {
  auto it = subs_.find(m.subscriber);
  if (it == subs_.end()) return;
  if (m.have_epoch >= view_.epoch) {
    // Current (or claims to be from the future): refresh with the full
    // view anyway — a revived subscriber re-runs its reconciliation off
    // this, e.g. re-deriving an in-flight fetch order it lost.
    send_full(m.subscriber);
    return;
  }
  // A pull from beyond the retained log forced a snapshot: grow retention
  // toward the demonstrated demand.
  uint64_t needed = view_.epoch - m.have_epoch;
  if (needed > delta_log_.size()) {
    retain_ = std::clamp<size_t>(2 * needed, retain_,
                                 params_.delta_log_retain_max);
  }
  ViewDeltaMsg msg = delta_since(m.have_epoch);
  send_raw(m.subscriber, msg.encode());
  mark_expected(m.subscriber, it->second);
}

void ControlPlane::on_node_stats(const NodeStatsMsg& m) {
  if (adaptive_) {
    adaptive_->observe_load(m.node, net_.clock().now(), m.busy_fraction);
  }
}

void ControlPlane::retransmit_tick() {
  adapt_retain();
  resync(/*everyone=*/false);
  // Nudge pending confirmers: a node whose kFetchComplete was lost (or
  // that never saw the ordering epoch) re-derives its duty from the full
  // view and re-reports. Idempotent on both ends.
  if (repl_.in_progress()) {
    for (NodeId id : repl_.pending()) {
      const core::ViewMember* member = view_.find(id);
      if (member && member->alive) send_full(node_address(id));
    }
  }
  net_.clock().schedule_after(params_.retransmit_interval_s,
                              [this] { retransmit_tick(); });
}

void ControlPlane::adaptive_tick() {
  double now = net_.clock().now();
  if (!reconfig_busy()) {
    uint32_t p_new = adaptive_->decide(now, repl_.target_p());
    if (p_new != 0 && p_new != repl_.target_p()) {
      ROAR_LOG(kInfo) << "control: adaptive p " << repl_.target_p() << " -> "
                      << p_new << " (p99=" << adaptive_->last_p99_s()
                      << "s, busy=" << adaptive_->last_busy() << ")";
      order_p_change(p_new);
    }
  }
  net_.clock().schedule_after(params_.adaptive_interval_s,
                              [this] { adaptive_tick(); });
}

}  // namespace roar::cluster
