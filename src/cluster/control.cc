#include "cluster/control.h"

#include "common/logging.h"

namespace roar::cluster {

void push_ranges(const core::Ring& ring, uint32_t p, net::Transport& net,
                 Frontend& frontend) {
  for (const auto& n : ring.nodes()) {
    Arc range = ring.range_of(n.id);
    RangePushMsg msg;
    msg.range_begin = range.begin();
    msg.range_len = range.length();
    msg.p = p;
    net.send(kMembershipAddr, node_address(n.id), msg.encode());
  }
  frontend.sync_ring(ring);
}

void order_p_change(const core::Ring& ring, uint32_t p_new,
                    net::Transport& net, Frontend& frontend) {
  uint32_t p_old = frontend.safe_p();
  if (p_new == p_old) return;
  if (p_new > p_old) {
    // Increase p: safe immediately; nodes drop surplus data lazily.
    frontend.set_target_p(p_new, {});
    push_ranges(ring, frontend.target_p(), net, frontend);
    return;
  }
  // Decrease p: order fetches, switch only on full confirmation.
  std::vector<NodeId> confirmers;
  for (const auto& n : ring.nodes()) {
    if (!n.alive) continue;
    confirmers.push_back(n.id);
  }
  frontend.set_target_p(p_new, confirmers);
  for (NodeId id : confirmers) {
    Arc fetch = core::ReplicationController::fetch_arc(ring, id, p_old, p_new);
    FetchOrderMsg msg;
    msg.arc_begin = fetch.begin();
    msg.arc_len = fetch.length();
    msg.new_p = p_new;
    net.send(kMembershipAddr, node_address(id), msg.encode());
  }
}

void reissue_fetch_orders(const core::Ring& ring, net::Transport& net,
                          Frontend& frontend) {
  const core::ReplicationController& repl = frontend.replication();
  if (!repl.in_progress()) return;
  uint32_t p_old = repl.safe_p(), p_new = repl.target_p();
  for (NodeId id : repl.pending()) {
    if (!ring.contains(id) || !ring.node(id).alive) continue;
    Arc fetch = core::ReplicationController::fetch_arc(ring, id, p_old, p_new);
    FetchOrderMsg msg;
    msg.arc_begin = fetch.begin();
    msg.arc_len = fetch.length();
    msg.new_p = p_new;
    net.send(kMembershipAddr, node_address(id), msg.encode());
  }
}

void handle_membership_message(
    const net::Bytes& payload, Frontend& frontend,
    const std::function<void(uint32_t new_p)>& on_reconfigured) {
  auto type = peek_type(payload);
  if (!type) return;
  if (*type == MsgType::kFetchComplete) {
    if (auto m = FetchCompleteMsg::decode(payload)) {
      frontend.confirm_fetch(m->node);
      if (!frontend.ring().empty() && frontend.safe_p() == m->new_p) {
        if (on_reconfigured) on_reconfigured(m->new_p);
      }
    }
  }
}

}  // namespace roar::cluster
