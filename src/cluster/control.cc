#include "cluster/control.h"

#include <algorithm>

#include "common/logging.h"

namespace roar::cluster {

ControlPlane::ControlPlane(net::Transport& net,
                           core::MembershipServer& membership,
                           ControlPlaneParams params)
    : net_(net),
      membership_(membership),
      params_(params),
      repl_(params.initial_p),
      storage_p_(params.initial_p) {
  view_.target_p = view_.safe_p = view_.storage_p = params.initial_p;
  if (params_.adaptive) {
    adaptive_.emplace(params_.adaptive_params);
  }
}

void ControlPlane::start() {
  net_.bind(kMembershipAddr, [this](net::Address from, net::Payload payload) {
    handle(from, payload);
  });
  if (params_.retransmit_interval_s > 0) {
    net_.clock().schedule_after(params_.retransmit_interval_s,
                                [this] { retransmit_tick(); });
  }
  if (adaptive_) {
    net_.clock().schedule_after(params_.adaptive_interval_s,
                                [this] { adaptive_tick(); });
  }
}

void ControlPlane::subscribe_node(NodeId id) {
  subs_[node_address(id)] = {false, false, 0};
}

void ControlPlane::subscribe_frontend(net::Address addr) {
  subs_[addr] = {true, false, 0};
}

void ControlPlane::unsubscribe(net::Address addr) {
  subs_.erase(addr);
  maybe_clear_drop_gate();  // a departed front-end leaves the gate
}

void ControlPlane::set_frontend_down(net::Address addr, bool down) {
  auto it = subs_.find(addr);
  if (it == subs_.end()) return;
  it->second.down = down;
  // A crashed front-end cannot hold surplus drops hostage: it re-syncs
  // through kViewPull before serving again, so it never plans at a p the
  // nodes stopped storing for.
  if (down) maybe_clear_drop_gate();
}

void ControlPlane::set_warming(NodeId id, bool warming) {
  if (warming) {
    warming_.insert(id);
  } else {
    warming_.erase(id);
  }
}

core::ClusterView ControlPlane::capture(uint64_t epoch) const {
  return core::ClusterView::capture(epoch, membership_.ring(0), repl_,
                                    storage_p_, warming_);
}

void ControlPlane::publish() {
  core::ClusterView next = capture(view_.epoch + 1);
  if (next.same_state(view_)) return;  // nothing to tell anyone
  ViewDeltaMsg msg;
  msg.delta = core::view_diff(view_, next);
  view_ = std::move(next);
  delta_log_.push_back(msg);
  while (delta_log_.size() > params_.delta_log_retain) {
    delta_log_.pop_front();
  }
  broadcast(msg);
}

void ControlPlane::resync(bool everyone) {
  ViewDeltaMsg msg;
  msg.delta = core::view_full_delta(view_);
  net::Bytes payload = msg.encode();  // shared by every recipient
  for (const auto& [addr, sub] : subs_) {
    if (sub.down) continue;
    if (!everyone && sub.acked >= view_.epoch) continue;
    net_.send(kMembershipAddr, addr, payload);
  }
}

void ControlPlane::broadcast(const ViewDeltaMsg& msg) {
  net::Bytes payload = msg.encode();  // one serialization per epoch step
  for (const auto& [addr, sub] : subs_) {
    if (sub.down) continue;
    net_.send(kMembershipAddr, addr, payload);
  }
}

void ControlPlane::send_full(net::Address to) {
  ViewDeltaMsg msg;
  msg.delta = core::view_full_delta(view_);
  net_.send(kMembershipAddr, to, msg.encode());
}

void ControlPlane::commit_change(uint32_t p_new) {
  storage_p_ = p_new;
  ++p_changes_;
  publish();
  if (on_reconfigured) on_reconfigured(p_new);
}

void ControlPlane::order_p_change(uint32_t p_new) {
  if (p_new == 0) return;
  if (reconfig_busy()) {
    ROAR_LOG(kInfo) << "control: p change to " << p_new
                    << " ignored, reconfiguration in flight";
    return;
  }
  uint32_t p_old = repl_.safe_p();
  if (p_new == p_old) return;
  if (p_new > p_old) {
    // Increase: safe immediately (arcs only shrink), but nodes may drop
    // surplus data only once every live front-end acknowledged the raise.
    repl_.begin_change(p_new, {});
    bool any_frontend = false;
    for (const auto& [addr, sub] : subs_) {
      any_frontend |= sub.is_frontend && !sub.down;
    }
    publish();
    if (any_frontend) {
      drop_gate_ = {p_new, view_.epoch};
    } else {
      commit_change(p_new);
    }
    return;
  }
  // Decrease: every live node must fetch its extended arc and confirm
  // before the new, smaller p becomes safe. The pending set travels in
  // the view — receiving the epoch IS the fetch order.
  std::vector<NodeId> confirmers;
  for (const auto& n : membership_.ring(0).nodes()) {
    if (n.alive) confirmers.push_back(n.id);
  }
  repl_.begin_change(p_new, confirmers);
  if (!repl_.in_progress()) {
    // Zero live confirmers (everything crashed): the change completes
    // vacuously inside the controller, so commit — otherwise storage_p
    // would sit above safe_p forever with no gate pending.
    commit_change(repl_.safe_p());
  } else {
    publish();
  }
}

void ControlPlane::abandon_fetch(NodeId id) {
  if (!repl_.in_progress()) return;
  bool was_pending = repl_.pending().count(id) > 0;
  repl_.abandon(id);
  if (!was_pending) return;
  if (!repl_.in_progress()) {
    commit_change(repl_.safe_p());
  } else {
    publish();
  }
}

uint64_t ControlPlane::acked_epoch(net::Address addr) const {
  auto it = subs_.find(addr);
  return it != subs_.end() ? it->second.acked : 0;
}

void ControlPlane::handle(net::Address from, net::ByteView payload) {
  (void)from;
  auto type = peek_type(payload);
  if (!type) return;
  switch (*type) {
    case MsgType::kFetchComplete:
      if (auto m = FetchCompleteMsg::decode(payload)) on_fetch_complete(*m);
      break;
    case MsgType::kViewAck:
      if (auto m = ViewAckMsg::decode(payload)) on_view_ack(*m);
      break;
    case MsgType::kViewPull:
      if (auto m = ViewPullMsg::decode(payload)) on_view_pull(*m);
      break;
    case MsgType::kNodeStats:
      if (auto m = NodeStatsMsg::decode(payload)) on_node_stats(*m);
      break;
    default:
      break;
  }
}

void ControlPlane::on_fetch_complete(const FetchCompleteMsg& m) {
  if (!repl_.in_progress() || m.new_p != repl_.target_p()) return;
  if (repl_.pending().count(m.node) == 0) return;  // duplicate confirm
  repl_.confirm(m.node);
  if (!repl_.in_progress()) {
    // Last confirmation: the smaller p is now safe everywhere.
    commit_change(repl_.safe_p());
  } else {
    publish();  // pending set shrank; nodes track it through the view
  }
}

void ControlPlane::on_view_ack(const ViewAckMsg& m) {
  auto it = subs_.find(m.subscriber);
  if (it == subs_.end()) return;
  it->second.acked = std::max(it->second.acked, m.epoch);
  if (adaptive_ && it->second.is_frontend) {
    adaptive_->observe_latency(m.subscriber, net_.clock().now(), m.p99_s,
                               m.completed);
  }
  maybe_clear_drop_gate();
}

void ControlPlane::maybe_clear_drop_gate() {
  if (!drop_gate_) return;
  for (const auto& [addr, sub] : subs_) {
    if (!sub.is_frontend || sub.down) continue;
    if (sub.acked < drop_gate_->second) return;
  }
  uint32_t p_new = drop_gate_->first;
  drop_gate_.reset();
  ROAR_LOG(kInfo) << "control: drop gate cleared, storage_p=" << p_new;
  commit_change(p_new);
}

void ControlPlane::on_view_pull(const ViewPullMsg& m) {
  if (subs_.find(m.subscriber) == subs_.end()) return;
  if (m.have_epoch >= view_.epoch) {
    // Current (or claims to be from the future): refresh with the full
    // view anyway — a revived subscriber re-runs its reconciliation off
    // this, e.g. re-deriving an in-flight fetch order it lost.
    send_full(m.subscriber);
    return;
  }
  uint64_t oldest = view_.epoch - delta_log_.size() + 1;
  if (!delta_log_.empty() && m.have_epoch + 1 >= oldest) {
    for (const auto& d : delta_log_) {
      if (d.delta.epoch > m.have_epoch) {
        net_.send(kMembershipAddr, m.subscriber, d.encode());
      }
    }
  } else {
    send_full(m.subscriber);
  }
}

void ControlPlane::on_node_stats(const NodeStatsMsg& m) {
  if (adaptive_) {
    adaptive_->observe_load(m.node, net_.clock().now(), m.busy_fraction);
  }
}

void ControlPlane::retransmit_tick() {
  resync(/*everyone=*/false);
  // Nudge pending confirmers: a node whose kFetchComplete was lost (or
  // that never saw the ordering epoch) re-derives its duty from the full
  // view and re-reports. Idempotent on both ends.
  if (repl_.in_progress()) {
    for (NodeId id : repl_.pending()) {
      const core::ViewMember* member = view_.find(id);
      if (member && member->alive) send_full(node_address(id));
    }
  }
  net_.clock().schedule_after(params_.retransmit_interval_s,
                              [this] { retransmit_tick(); });
}

void ControlPlane::adaptive_tick() {
  double now = net_.clock().now();
  if (!reconfig_busy()) {
    uint32_t p_new = adaptive_->decide(now, repl_.target_p());
    if (p_new != 0 && p_new != repl_.target_p()) {
      ROAR_LOG(kInfo) << "control: adaptive p " << repl_.target_p() << " -> "
                      << p_new << " (p99=" << adaptive_->last_p99_s()
                      << "s, busy=" << adaptive_->last_busy() << ")";
      order_p_change(p_new);
    }
  }
  net_.clock().schedule_after(params_.adaptive_interval_s,
                              [this] { adaptive_tick(); });
}

}  // namespace roar::cluster
