#include "cluster/scenario.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/query_planner.h"

namespace roar::cluster {

namespace {

std::string time_tag(double at) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "t=%.3f", at);
  return buf;
}

using WindowKey = std::pair<uint64_t, uint64_t>;  // (begin.raw, end.raw)

WindowKey window_key(RingId begin, RingId end) {
  return {begin.raw(), end.raw()};
}

}  // namespace

// ---------------------------------------------------------------- checker

InvariantChecker::InvariantChecker(EmulatedCluster& cluster, uint64_t seed)
    : cluster_(cluster), rng_(seed) {}

void InvariantChecker::fail(const std::string& context, std::string detail) {
  // Every invariant trip is a flight-recorder anomaly: the tracer renders
  // the recent event timeline + metrics snapshot while the offending
  // state is still current (trace id 0 = whole-cluster trip).
  cluster_.tracer().anomaly(0, context + ": " + detail, cluster_.now());
  violations_.push_back({cluster_.now(), context, std::move(detail)});
}

size_t InvariantChecker::check(const std::string& context) {
  size_t before = violations_.size();
  uint32_t p = cluster_.control().safe_p();
  if (p >= 2) {
    check_plan(context, p);       // the minimum legal partitioning
    check_plan(context, 2 * p);   // any pq >= p must also be exact
  }
  check_reconfig(context);
  check_view(context);
  check_accounting(context);
  check_ingest_safety(context);
  check_queues(context);
  return violations_.size() - before;
}

void InvariantChecker::check_queues(const std::string& context) {
  for (NodeId id : cluster_.node_ids()) {
    const NodeRuntime& node = cluster_.node(id);
    size_t cap = node.exec_queue_cap();
    if (cap > 0 && node.exec_queue_hwm() > cap) {
      fail(context, "node " + std::to_string(id) + " exec queue hwm " +
                        std::to_string(node.exec_queue_hwm()) +
                        " exceeds cap " + std::to_string(cap));
    }
    double bound = node.max_backlog_s();
    // The hwm is recorded only at admitted arrivals, so it can never
    // legally exceed the loosest per-class bound (the scavenger share is
    // the widest gate any admitted sub-query passed).
    if (bound > 0 && node.backlog_hwm_s() > bound + 1e-9) {
      fail(context, "node " + std::to_string(id) + " backlog hwm " +
                        std::to_string(node.backlog_hwm_s()) +
                        "s exceeds bound " + std::to_string(bound) + "s");
    }
  }
  for (uint32_t i = 0; i < cluster_.frontend_count(); ++i) {
    const Frontend& fe = cluster_.frontend(i);
    const core::AdmissionController* adm = fe.admission();
    if (!adm) continue;
    size_t cap = adm->params().inflight_cap;
    if (fe.queue_hwm() > cap) {
      fail(context, "frontend " + std::to_string(i) + " in-flight hwm " +
                        std::to_string(fe.queue_hwm()) + " exceeds cap " +
                        std::to_string(cap));
    }
    for (size_t k = 0; k < core::kQueryClasses; ++k) {
      auto c = static_cast<core::QueryClass>(k);
      const auto& st = adm->stats(c);
      if (st.offered != st.admitted + st.shed) {
        fail(context, "frontend " + std::to_string(i) + " class " +
                          core::class_name(c) + " admission leak: offered " +
                          std::to_string(st.offered) + " != admitted " +
                          std::to_string(st.admitted) + " + shed " +
                          std::to_string(st.shed));
      }
    }
  }
}

void InvariantChecker::check_view(const std::string& context) {
  const ControlPlane& control = cluster_.control();
  uint64_t epoch = control.epoch();
  if (epoch < last_control_epoch_) {
    fail(context, "control epoch went backwards");
  }
  last_control_epoch_ = std::max(last_control_epoch_, epoch);

  // storage_p lags safe_p exactly while the drop gate holds front-end
  // acks hostage; at every other moment the levels agree.
  uint32_t storage = control.storage_p(), safe = control.safe_p();
  if (control.drop_gate_pending()) {
    if (storage >= safe) {
      fail(context, "drop gate pending but storage_p " +
                        std::to_string(storage) + " >= safe_p " +
                        std::to_string(safe));
    }
  } else if (storage != safe) {
    fail(context, "no drop gate but storage_p " + std::to_string(storage) +
                      " != safe_p " + std::to_string(safe));
  }

  // The highest level any live node actually stores at: a front-end
  // planning below it would partition queries the nodes no longer hold
  // replication arcs for.
  uint32_t max_node_p = 0;
  for (const auto& n : cluster_.membership().ring(0).nodes()) {
    NodeRuntime& node = cluster_.node(n.id);
    if (!node.alive() || node.range().empty()) continue;
    max_node_p = std::max(max_node_p, node.current_p());
    // Dissemination soundness: a node never applies an epoch the control
    // plane has not published, and the (possibly relay-aggregated)
    // watermark the control plane holds for it never exceeds what the
    // node actually applied — an aggregator that over-reported here could
    // clear the drop gate or the laggard set early.
    if (node.view_epoch() > epoch) {
      fail(context, "node " + std::to_string(n.id) +
                        " view epoch ahead of the control plane");
    }
    uint64_t acked = control.acked_epoch(node_address(n.id));
    if (acked > node.view_epoch()) {
      fail(context, "node " + std::to_string(n.id) +
                        " acked watermark " + std::to_string(acked) +
                        " ahead of its applied epoch " +
                        std::to_string(node.view_epoch()));
    }
  }

  for (uint32_t i = 0; i < cluster_.frontend_count(); ++i) {
    const Frontend& fe = cluster_.frontend(i);
    uint64_t fe_epoch = fe.view_epoch();
    if (fe_epoch > epoch) {
      fail(context, "frontend " + std::to_string(i) +
                        " view epoch ahead of the control plane");
    }
    uint64_t& seen = last_frontend_epoch_[i];
    if (fe_epoch < seen) {
      fail(context, "frontend " + std::to_string(i) +
                        " view epoch went backwards");
    }
    seen = std::max(seen, fe_epoch);
    if (!fe.ready()) continue;  // refuses queries: cannot plan unsafely
    if (max_node_p > 0 && fe.safe_p() < max_node_p) {
      fail(context, "frontend " + std::to_string(i) + " plans at p=" +
                        std::to_string(fe.safe_p()) +
                        " while some node stores at p=" +
                        std::to_string(max_node_p) + " (unsafe p)");
    }
  }
}

size_t InvariantChecker::check_view_converged(const std::string& context) {
  size_t before = violations_.size();
  const ControlPlane& control = cluster_.control();
  net::FaultTransport* ft = cluster_.faults();
  for (uint32_t i = 0; i < cluster_.frontend_count(); ++i) {
    const Frontend& fe = cluster_.frontend(i);
    if (!fe.alive()) continue;  // crashed and never revived
    // A front-end still cut off from the control plane cannot have
    // converged; the heal path (or the retransmit tick) resyncs it.
    if (ft && ft->link_cut(kMembershipAddr, fe.address())) continue;
    if (fe.view_epoch() != control.epoch()) {
      fail(context, "frontend " + std::to_string(i) + " ended on epoch " +
                        std::to_string(fe.view_epoch()) +
                        ", control plane on " +
                        std::to_string(control.epoch()));
    }
  }
  return violations_.size() - before;
}

void InvariantChecker::check_ingest_safety(const std::string& context) {
  const IngestRouter* router = cluster_.ingest();
  if (!router) return;
  auto replicas = cluster_.ingest_replicas();
  for (auto& detail : ingest_safety_report(*router, replicas)) {
    fail(context, "ingest: " + std::move(detail));
  }
  // Applied LSNs only move forward (full-segment resets jump them to the
  // issued LSN, which is itself monotone).
  for (const auto& rep : replicas) {
    for (const auto& [shard, applied] : rep.log->applied()) {
      uint64_t& seen = last_applied_[{shard, rep.node}];
      if (applied < seen) {
        fail(context, "ingest: node " + std::to_string(rep.node) +
                          " shard " + std::to_string(shard) +
                          " applied LSN went backwards (" +
                          std::to_string(seen) + " -> " +
                          std::to_string(applied) + ")");
      }
      seen = std::max(seen, applied);
    }
  }
}

size_t InvariantChecker::check_ingest_converged(const std::string& context) {
  const IngestRouter* router = cluster_.ingest();
  if (!router) return 0;
  size_t before = violations_.size();
  auto replicas = cluster_.ingest_replicas();
  for (auto& detail : ingest_convergence_report(*router, replicas,
                                                /*probe_matches=*/true)) {
    fail(context, "ingest convergence: " + std::move(detail));
  }
  return violations_.size() - before;
}

void InvariantChecker::check_plan(const std::string& context, uint32_t pq) {
  const core::Ring& ring = cluster_.membership().ring(0);
  if (ring.empty() || pq < 2) return;
  uint32_t p = cluster_.control().safe_p();
  bool any_alive = false;
  for (const auto& n : ring.nodes()) any_alive |= n.alive;
  if (!any_alive) return;

  core::QueryPlanner planner;
  RingId start = rng_.next_ring_id();
  auto plan = planner.plan(ring, start, pq, p, rng_);

  // The pq equal responsibility windows the plan must realise exactly —
  // failure splits copy the original window, so even a split plan groups
  // back onto these keys.
  std::map<WindowKey, uint32_t> expected;  // window -> sub-query index
  for (uint32_t i = 0; i < pq; ++i) {
    RingId wb = query_point(start, (i + pq - 1) % pq, pq);
    RingId we = query_point(start, i, pq);
    expected[window_key(wb, we)] = i;
  }

  std::map<WindowKey, std::vector<const core::RoarSubQuery*>> groups;
  double share_sum = 0.0;
  for (const auto& part : plan.parts) {
    WindowKey key = window_key(part.window_begin, part.responsibility_end);
    if (!expected.count(key)) {
      fail(context, "pq=" + std::to_string(pq) +
                        ": sub-query window is not one of the query's " +
                        "equal arcs (split changed the window)");
      continue;
    }
    groups[key].push_back(&part);
    share_sum += part.share;
  }
  for (const auto& [key, idx] : expected) {
    if (!groups.count(key)) {
      fail(context, "pq=" + std::to_string(pq) + ": window " +
                        std::to_string(idx) + " missing from plan");
    }
  }
  if (share_sum < 1.0 - 1e-9 || share_sum > 1.0 + 1e-9) {
    fail(context, "pq=" + std::to_string(pq) + ": plan shares sum to " +
                      std::to_string(share_sum) + ", expected 1");
  }

  // §4.4 harvest bound: a window may be abandoned only when its owner is
  // dead, so planned harvest >= 1 − dead_owner_windows/pq.
  uint32_t dead_owner_windows = 0;
  for (const auto& [key, idx] : expected) {
    RingId end(key.second);
    if (!ring.nodes()[ring.index_in_charge(end)].alive) ++dead_owner_windows;
  }
  double abandoned = 0.0;
  for (const auto& part : plan.parts) {
    if (part.node == core::kInvalidNode) abandoned += part.share;
  }
  double bound = 1.0 - static_cast<double>(dead_owner_windows) / pq;
  if (1.0 - abandoned < bound - 1e-9) {
    fail(context, "pq=" + std::to_string(pq) + ": planned harvest " +
                      std::to_string(1.0 - abandoned) +
                      " below the §4.4 bound " + std::to_string(bound));
  }

  // Exactly-one ownership + storage coverage over sampled objects.
  for (uint32_t t = 0; t < object_samples_; ++t) {
    RingId obj = rng_.next_ring_id();
    uint32_t owners = 0, owner_i = 0;
    for (uint32_t i = 0; i < pq; ++i) {
      if (core::object_matched_by(obj, start, i, pq)) {
        ++owners;
        owner_i = i;
      }
    }
    if (owners != 1) {
      fail(context, "pq=" + std::to_string(pq) + ": object matched by " +
                        std::to_string(owners) + " sub-queries");
      continue;
    }
    RingId wb = query_point(start, (owner_i + pq - 1) % pq, pq);
    RingId we = query_point(start, owner_i, pq);
    auto git = groups.find(window_key(wb, we));
    if (git == groups.end()) continue;  // already flagged as missing
    const auto& parts = git->second;

    Arc repl = core::replication_arc(obj, p);
    if (parts.size() == 1 && parts[0]->node == core::kInvalidNode) {
      // Abandoned window: legitimate only if its owner really is dead.
      if (ring.nodes()[ring.index_in_charge(we)].alive) {
        fail(context, "window abandoned although its owning node is alive");
      }
      continue;
    }
    bool stored = false;
    for (const auto* part : parts) {
      if (part->node == core::kInvalidNode) {
        fail(context, "split window carries an unassigned part");
        continue;
      }
      if (!ring.node(part->node).alive) {
        fail(context, "sub-query assigned to dead node " +
                          std::to_string(part->node));
        continue;
      }
      stored |= ring.range_of(part->node).intersects(repl);
    }
    if (!stored) {
      fail(context,
           "pq=" + std::to_string(pq) +
               ": no assigned node stores the object's replication arc");
    }
  }
}

void InvariantChecker::check_reconfig(const std::string& context) {
  const core::ReplicationController& repl = cluster_.control().replication();
  uint32_t safe = repl.safe_p(), target = repl.target_p();
  uint32_t storage = cluster_.control().storage_p();
  if (repl.in_progress()) {
    if (target >= safe) {
      fail(context, "confirmations pending but target_p " +
                        std::to_string(target) + " >= safe_p " +
                        std::to_string(safe));
    }
  } else if (safe != target) {
    fail(context, "no confirmations pending but safe_p " +
                      std::to_string(safe) + " != target_p " +
                      std::to_string(target));
  }

  // Node-level view: liveness agrees with the authoritative ring, and
  // every live node that has received ranges stores at the old level, the
  // new level (its own fetch already done), or the drop-gated storage
  // level — never anything else.
  const core::Ring& ring = cluster_.membership().ring(0);
  net::FaultTransport* ft = cluster_.faults();
  for (const auto& n : ring.nodes()) {
    NodeRuntime& node = cluster_.node(n.id);
    if (node.alive() != n.alive) {
      fail(context, "node " + std::to_string(n.id) +
                        " runtime/ring liveness mismatch");
      continue;
    }
    if (!node.alive() || node.range().empty()) continue;
    // A node the control plane cannot currently reach may hold stale
    // state with no way to learn better; the heal path resyncs the view,
    // so the assertion resumes once the cut ends.
    if (ft && ft->link_cut(kMembershipAddr, node.address())) continue;
    uint32_t np = node.current_p();
    if (np != safe && np != target && np != storage) {
      fail(context, "node " + std::to_string(n.id) + " serves at p=" +
                        std::to_string(np) + ", none of safe_p " +
                        std::to_string(safe) + ", target_p " +
                        std::to_string(target) + ", storage_p " +
                        std::to_string(storage));
    }
  }
}

void InvariantChecker::check_accounting(const std::string& context) {
  net::Transport& t = cluster_.transport();
  uint64_t sent = t.messages_sent();
  if (sent < last_messages_sent_) {
    fail(context, "messages_sent went backwards");
  }
  last_messages_sent_ = sent;

  net::FaultTransport* ft = cluster_.faults();
  if (ft) {
    const auto& c = ft->counters();
    uint64_t expect_inner =
        ft->messages_sent() - c.messages_dropped + c.duplicates -
        ft->in_flight();
    uint64_t inner_sent = ft->inner()->messages_sent();
    if (inner_sent != expect_inner) {
      fail(context, "fault-layer conservation broken: inner sent " +
                        std::to_string(inner_sent) + ", expected " +
                        std::to_string(expect_inner));
    }
    if (ft->messages_dropped() > ft->messages_sent() + c.duplicates) {
      fail(context, "dropped exceeds sent plus duplicates");
    }
  } else {
    if (t.messages_dropped() > t.messages_sent()) {
      fail(context, "dropped exceeds sent");
    }
    if (t.bytes_dropped() > t.bytes_sent()) {
      fail(context, "dropped bytes exceed sent bytes");
    }
  }
}

// --------------------------------------------------------------- scenario

Scenario::Scenario(EmulatedCluster& cluster, uint64_t seed)
    : cluster_(cluster),
      checker_(cluster, subseed(seed, SeedStream::kScenario)),
      rng_(subseed(seed, SeedStream::kScenarioWorkload)) {}

Scenario& Scenario::add(double at, std::string what,
                        std::function<void()> apply) {
  steps_.push_back({at, std::move(what), std::move(apply)});
  return *this;
}

Scenario& Scenario::crash(double at, NodeId id) {
  return add(at, "crash node " + std::to_string(id),
             [this, id] { cluster_.kill_node(id); });
}

Scenario& Scenario::revive(double at, NodeId id) {
  return add(at, "revive node " + std::to_string(id),
             [this, id] { cluster_.revive_node(id); });
}

Scenario& Scenario::crash_frontend(double at, uint32_t index) {
  return add(at, "crash frontend " + std::to_string(index),
             [this, index] { cluster_.kill_frontend(index); });
}

Scenario& Scenario::revive_frontend(double at, uint32_t index) {
  return add(at, "revive frontend " + std::to_string(index),
             [this, index] { cluster_.revive_frontend(index); });
}

Scenario& Scenario::join(double at, double speed) {
  return add(at, "join node (speed " + std::to_string(speed) + ")",
             [this, speed] { cluster_.add_node(speed); });
}

Scenario& Scenario::leave(double at, NodeId id) {
  return add(at, "leave node " + std::to_string(id),
             [this, id] { cluster_.leave_node(id); });
}

Scenario& Scenario::remove_dead(double at) {
  return add(at, "remove dead nodes",
             [this] { cluster_.remove_dead_nodes(); });
}

Scenario& Scenario::balance(double at) {
  return add(at, "balance round", [this] { cluster_.balance_round(); });
}

Scenario& Scenario::reconfigure(double at, uint32_t p_new) {
  return add(at, "reconfigure p=" + std::to_string(p_new), [this, p_new] {
    // Overlapping changes would leave nodes fetching for a superseded p;
    // the control plane serialises reconfigurations, so do we.
    if (!cluster_.control().reconfig_busy()) {
      cluster_.change_p(p_new);
    }
  });
}

Scenario& Scenario::partition(double at, double duration,
                              std::vector<NodeId> island) {
  if (!cluster_.faults()) {
    throw std::logic_error(
        "Scenario::partition requires ClusterConfig::enable_faults");
  }
  std::string who;
  for (NodeId id : island) {
    if (!who.empty()) who += ",";
    who += std::to_string(id);
  }
  auto pid = std::make_shared<uint64_t>(0);
  add(at, "partition {" + who + "} from the rest", [this, island, pid] {
    std::vector<net::Address> a, b;
    for (NodeId id : island) a.push_back(node_address(id));
    b = {kMembershipAddr, kUpdateServerAddr};
    for (uint32_t i = 0; i < cluster_.frontend_count(); ++i) {
      b.push_back(frontend_address(i));
    }
    for (NodeId id = 0; id < cluster_.node_count(); ++id) {
      if (std::find(island.begin(), island.end(), id) == island.end()) {
        b.push_back(node_address(id));
      }
    }
    *pid = cluster_.faults()->partition(std::move(a), std::move(b));
  });
  add(at + duration, "heal partition {" + who + "}", [this, pid] {
    if (*pid != 0) cluster_.faults()->heal(*pid);
    // Resync the view: every subscriber the cut starved receives the
    // current epoch again and re-derives its state — including any §4.5
    // fetch duty whose ordering delta the cut black-holed, which is how
    // an in-progress reconfiguration always completes after a heal. The
    // full resync also refreshes the front-ends' liveness mirrors, so
    // nodes they declared dead during the cut serve again immediately.
    cluster_.control().resync(/*everyone=*/true);
  });
  return *this;
}

Scenario& Scenario::burst(double at, double rate_per_s, uint32_t count) {
  return add(
      at,
      "burst of " + std::to_string(count) + " queries at " +
          std::to_string(rate_per_s) + "/s",
      [this, rate_per_s, count] {
        double t = cluster_.now();
        for (uint32_t i = 0; i < count; ++i) {
          t += rng_.next_exponential(rate_per_s);
          cluster_.loop().schedule_at(t, [this] {
            ++result_.queries_submitted;
            cluster_.submit_query([this](const QueryOutcome& out) {
              if (out.complete) {
                ++result_.queries_completed;
              } else {
                ++result_.queries_partial;
              }
              result_.min_harvest =
                  std::min(result_.min_harvest, out.harvest);
            });
          });
        }
      });
}

Scenario& Scenario::ingest(double at, double rate_per_s, uint32_t count,
                           double delete_frac) {
  if (!cluster_.ingest()) {
    throw std::logic_error(
        "Scenario::ingest requires ClusterConfig::enable_ingest");
  }
  return add(
      at,
      "ingest " + std::to_string(count) + " ops at " +
          std::to_string(rate_per_s) + "/s",
      [this, rate_per_s, count, delete_frac] {
        double t = cluster_.now();
        for (uint32_t i = 0; i < count; ++i) {
          t += rng_.next_exponential(rate_per_s);
          cluster_.loop().schedule_at(t, [this, delete_frac] {
            ++result_.ingest_ops;
            issue_random_ingest_op(*cluster_.ingest(), rng_, delete_frac);
          });
        }
      });
}

ScenarioResult Scenario::run(double duration) {
  result_ = {};
  double t0 = cluster_.now();
  // Violations recorded by earlier run() calls (the checker accumulates)
  // stay out of this run's result.
  size_t violations_before = checker_.violations().size();
  size_t dumps_before = cluster_.tracer().dump_count();
  checker_.check("start");

  std::stable_sort(steps_.begin(), steps_.end(),
                   [](const Step& a, const Step& b) { return a.at < b.at; });
  for (Step& step : steps_) {
    cluster_.loop().schedule_at(t0 + step.at, [this, &step] {
      step.apply();
      result_.trace.push_back(time_tag(step.at) + " " + step.what);
      ++result_.events_applied;
    });
    // The audit runs a settle window later: the event's control-plane
    // messages (range pushes, fetch orders) need a network latency to
    // land before node-level state is meaningful to assert on.
    cluster_.loop().schedule_at(t0 + step.at + check_settle_s_,
                                [this, &step] { checker_.check(step.what); });
  }
  cluster_.loop().run_until(t0 + duration);

  // Drain window: queries submitted near the end of the run (or stalled
  // behind timeout/split rounds) get a bounded grace period to resolve —
  // and, with ingestion, the replicas' SyncSessions get time to converge
  // on the router's final LSNs — so the result accounts for everything.
  double drain_deadline = t0 + duration + drain_s_;
  auto drained = [this] {
    return result_.queries_completed + result_.queries_partial >=
               result_.queries_submitted &&
           cluster_.ingest_converged();
  };
  // do-while: advance at least once, so an event applied at the very end
  // (e.g. a revival whose range push is still in flight) is visible to
  // the convergence verdict before we judge it.
  do {
    cluster_.loop().run_until(
        std::min(cluster_.now() + 1.0, drain_deadline));
  } while (!drained() && cluster_.now() < drain_deadline);

  checker_.check("end");
  result_.ingest_converged = cluster_.ingest_converged();
  checker_.check_ingest_converged("end");
  checker_.check_view_converged("end");
  result_.messages_sent = cluster_.transport().messages_sent();
  result_.messages_dropped = cluster_.transport().messages_dropped();
  result_.violations.assign(
      checker_.violations().begin() + violations_before,
      checker_.violations().end());

  // Flight-recorder capture: dumps recorded during this run ride in the
  // result, and land as files when ROAR_FLIGHT_DUMP_DIR is set (the CI
  // chaos soak uploads that directory as an artifact on failure).
  auto dumps = cluster_.tracer().dumps();
  if (dumps.size() > dumps_before) {
    result_.flight_dumps.assign(dumps.begin() + dumps_before, dumps.end());
  }
  if (const char* dir = std::getenv("ROAR_FLIGHT_DUMP_DIR");
      dir != nullptr && *dir != '\0' && !result_.flight_dumps.empty()) {
    for (size_t i = 0; i < result_.flight_dumps.size(); ++i) {
      const auto& d = result_.flight_dumps[i];
      std::ostringstream name;
      name << dir << "/flight_dump_" << dumps_before + i << ".txt";
      std::ofstream out(name.str());
      if (out) {
        out << "reason: " << d.reason << "\n"
            << "trace: " << d.trace_id << "\n"
            << "at: " << d.at << "\n\n"
            << d.rendered;
      }
    }
  }
  return result_;
}

}  // namespace roar::cluster
