// The ROAR front-end server (§4.8) in the emulated cluster.
//
// Receives client queries, picks the start id with the Algorithm-1 sweep
// against its per-node speed (EWMA of observed rates) and queue estimates,
// partitions the query with the §4.2 planner, sends sub-queries, detects
// failures with per-sub-query timers (splitting the unfinished sub-query
// across the dead node's neighbourhood, §4.4/§4.8), and assembles replies.
// It also owns the safe-p bookkeeping during reconfigurations (§4.5) and
// the per-query delay breakdown of Fig 7.11.
#pragma once

#include <functional>
#include <map>
#include <unordered_map>

#include "cluster/node.h"
#include "common/stats.h"
#include "core/reconfig.h"
#include "core/scheduler.h"

namespace roar::cluster {

struct FrontendParams {
  uint32_t p = 8;
  double pq_factor = 1.0;
  // Per-query fixed cost at the front-end (result assembly etc.); the
  // LM/LC variants of §7.2 differ here.
  double fixed_cost_s = 0.0;
  // Timeout = expected finish × factor + margin.
  double timeout_factor = 3.0;
  double timeout_margin_s = 0.200;
  bool range_adjustment = false;
  uint32_t max_splits = 0;
  double ewma_alpha = 0.2;
  double initial_rate = 250'000.0;  // metadata/s prior before observations
  double subquery_overhead_s = 0.004;  // matches NodeParams for estimates
};

struct QueryBreakdown {
  double schedule_s = 0.0;  // wall-clock cost of running the scheduler
  double network_s = 0.0;
  double service_s = 0.0;   // slowest node's processing
  double queue_s = 0.0;     // waiting behind other sub-queries
  double total_s = 0.0;     // end-to-end virtual delay
};

struct QueryOutcome {
  uint64_t id = 0;
  bool complete = false;
  // Fraction of the object space actually searched (Brewer's harvest,
  // §2.1): 1.0 for complete queries, lower when failures made some
  // responsibility windows unreachable.
  double harvest = 1.0;
  uint64_t matches = 0;
  uint32_t parts_sent = 0;
  uint32_t retries = 0;
  QueryBreakdown breakdown;
};

class Frontend {
 public:
  using QueryCallback = std::function<void(const QueryOutcome&)>;

  Frontend(net::Transport& net, FrontendParams params,
           uint64_t dataset_size, uint64_t seed);

  void start();

  // Ring mirror management (driven by the membership service).
  // Replaces the whole mirror with the authoritative ring (positions,
  // speeds, liveness) while preserving accumulated per-node statistics.
  void sync_ring(const core::Ring& authoritative);
  void node_up(NodeId id, RingId position, double speed_hint);
  void node_down(NodeId id);
  void node_removed(NodeId id);
  void node_moved(NodeId id, RingId position);

  // Reconfiguration interface (§4.5).
  void set_target_p(uint32_t p_new, const std::vector<NodeId>& must_confirm);
  void confirm_fetch(NodeId node);
  // Long-term failure handling: stop waiting on a confirmer that was
  // removed from the ring (§4.9); see ReplicationController::abandon.
  void abandon_fetch(NodeId node) { repl_.abandon(node); }
  uint32_t safe_p() const { return repl_.safe_p(); }
  uint32_t target_p() const { return repl_.target_p(); }
  // Full reconfiguration state (pending confirmations etc.) for invariant
  // checks; read-only.
  const core::ReplicationController& replication() const { return repl_; }

  // Submits a query; `cb` fires when all sub-queries complete.
  uint64_t submit(QueryCallback cb);

  // --- live ingestion (PAPER §7.4) ---------------------------------------
  // The ingest router shares the front-end's process (it binds
  // kUpdateServerAddr); harnesses attach it here so clients mutate the
  // index through the same face they query it.
  void set_ingest(IngestRouter* router) { ingest_ = router; }
  IngestRouter* ingest() { return ingest_; }
  const IngestRouter* ingest() const { return ingest_; }
  // Client mutation entry points; require an attached router.
  RingId add_document(const pps::FileInfo& doc);
  bool delete_document(RingId doc_id);

  void set_dataset_size(uint64_t d) { dataset_size_ = d; }

  // Stats.
  const SampleSet& delays() const { return delays_; }
  const SampleSet& schedule_times() const { return schedule_times_; }
  uint64_t queries_completed() const { return completed_; }
  uint64_t failures_detected() const { return failures_detected_; }
  double estimated_rate(NodeId id) const;
  const core::Ring& ring() const { return ring_; }

  // Exposed for tests: predicted finish for a share on a node.
  double predict(NodeId node, double share) const;

 private:
  struct PendingPart {
    core::RoarSubQuery sub;
    NodeId node;
    uint64_t timer_id = 0;
    bool done = false;
    // First expiry extends the timer once (the node may be overloaded, not
    // dead); only the second expiry declares failure. Prevents the retry
    // storm a mass failure's backlog would otherwise trigger.
    uint8_t expiries = 0;
  };
  struct PendingQuery {
    uint64_t id;
    double submit_time;
    double schedule_wall_s = 0.0;
    uint32_t outstanding = 0;
    uint32_t retries = 0;
    uint64_t matches = 0;
    double max_service = 0.0;
    // False if any responsibility window could not be assigned to a live
    // node (harvest < 100%): the query is answered but reported partial.
    bool full_coverage = true;
    double missing_share = 0.0;  // uncovered fraction of the object space
    std::vector<PendingPart> parts;
    QueryCallback cb;
  };

  class Estimator;

  void handle(net::Address from, net::Bytes payload);
  void on_reply(const SubQueryReplyMsg& m);
  void on_timeout(uint64_t query_id, uint32_t part_index);
  void send_part(PendingQuery& q, const core::RoarSubQuery& sub);
  void finish_if_done(PendingQuery& q);

  net::Transport& net_;
  FrontendParams params_;
  uint64_t dataset_size_;
  IngestRouter* ingest_ = nullptr;
  core::Ring ring_;
  core::QueryPlanner planner_;
  core::ReplicationController repl_;
  Rng rng_;

  struct NodeState {
    Ewma rate;
    double busy_until = 0.0;
    bool alive = true;
  };
  std::unordered_map<NodeId, NodeState> nodes_;

  uint64_t next_query_id_ = 1;
  std::map<uint64_t, PendingQuery> pending_;
  SampleSet delays_;
  SampleSet schedule_times_;
  uint64_t completed_ = 0;
  uint64_t failures_detected_ = 0;
};

}  // namespace roar::cluster
