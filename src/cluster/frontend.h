// A ROAR front-end server (§4.8) — one of possibly many (§4.9).
//
// Receives client queries, picks the start id with the Algorithm-1 sweep
// against its per-node speed (EWMA of observed rates) and queue estimates,
// partitions the query with the §4.2 planner, sends sub-queries, detects
// failures with per-sub-query timers (splitting the unfinished sub-query
// across the dead node's neighbourhood, §4.4/§4.8), and assembles replies.
//
// Control state is not owned here: each front-end consumes the epoch-
// versioned ClusterView published by the ControlPlane (kViewDelta in,
// kViewAck out, kViewPull on gaps or restart). The ring mirror, safe p and
// target p are all derived from the subscribed view; the front-end layers
// only its own short-term liveness knowledge (timeout discoveries, reply
// resurrections) on top, until the next epoch resets the mirror. A front-
// end refuses queries until its first view applies (ready()) — a revived
// front-end must re-sync before it may plan, which is what keeps a stale
// planner from ever using an unsafe p.
//
// Every front-end instance has its own address (frontend_address(i)), its
// own scheduler RNG stream and its own EWMA estimator state, so N of them
// serve concurrently against the same view.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cluster/node.h"
#include "common/metrics.h"
#include "common/stats.h"
#include "core/cluster_view.h"
#include "core/scheduler.h"
#include "core/slo.h"
#include "core/tracer.h"

namespace roar::cluster {

struct FrontendParams {
  uint32_t p = 8;  // mirror level before the first view arrives
  double pq_factor = 1.0;
  // Per-query fixed cost at the front-end (result assembly etc.); the
  // LM/LC variants of §7.2 differ here.
  double fixed_cost_s = 0.0;
  // Timeout = expected finish × factor + margin.
  double timeout_factor = 3.0;
  double timeout_margin_s = 0.200;
  bool range_adjustment = false;
  uint32_t max_splits = 0;
  double ewma_alpha = 0.2;
  double initial_rate = 250'000.0;  // metadata/s prior before observations
  double subquery_overhead_s = 0.004;  // matches NodeParams for estimates
  // Periodic latency digest to the control plane (piggybacked on
  // kViewAck); 0 disables. The adaptive-p controller needs this on.
  double digest_interval_s = 0.0;
  // Overload control: when enabled, every submit passes the admission
  // controller BEFORE any scheduling/planning work, the in-flight map is
  // hard-capped at admission.inflight_cap, and only interactive queries
  // get the pq_factor partitioning boost (batch/scavenger plan at safe_p
  // — the contract says they can wait, so they should not fan out wider).
  bool slo_enabled = false;
  core::AdmissionParams admission;
};

struct QueryBreakdown {
  double schedule_s = 0.0;  // wall-clock cost of running the scheduler
  double network_s = 0.0;
  double service_s = 0.0;   // slowest node's processing
  double queue_s = 0.0;     // waiting behind other sub-queries
  double total_s = 0.0;     // end-to-end virtual delay
};

struct QueryOutcome {
  uint64_t id = 0;
  bool complete = false;
  // Fraction of the object space actually searched (Brewer's harvest,
  // §2.1): 1.0 for complete queries, lower when failures made some
  // responsibility windows unreachable.
  double harvest = 1.0;
  uint64_t matches = 0;
  uint32_t parts_sent = 0;
  uint32_t retries = 0;
  core::QueryClass klass = core::QueryClass::kInteractive;
  // Refused by the frontend admission controller: the outcome fired
  // immediately, before any planning, with harvest 0.
  bool shed = false;
  // Sub-queries refused at a node's queue bound (harvest loss, not
  // failure: the node proved alive by replying).
  uint32_t parts_shed = 0;
  // End-to-end trace id (core/tracer.h) — the key into the assembled
  // span tree and the flight recorder.
  uint64_t trace = 0;
  QueryBreakdown breakdown;
};

// A classed query submission. The plain submit(cb) overload is equivalent
// to the default request (interactive, user 0, no extra cost).
struct QueryRequest {
  core::QueryClass klass = core::QueryClass::kInteractive;
  uint64_t user = 0;          // accounting only (workload engine's id)
  double extra_cost_s = 0.0;  // e.g. user-metadata cache-miss I/O; added
                              // to the reported end-to-end latency
};

// Seed derivation for front-end instance `index` of a cluster seeded with
// `cluster_seed`. Shared by both harnesses — the InProc-vs-TCP parity
// tests depend on their front-ends drawing identical random sequences.
// Instance 0 keeps the historical single-front-end stream.
uint64_t frontend_seed(uint64_t cluster_seed, uint32_t index);

class Frontend;

// The harnesses' client-side balancer rule, shared so the two cannot
// drift (parity depends on identical front-end selection): round-robin
// from `cursor`, skipping instances that are down or still syncing their
// view. Advances `cursor` past the pick; with nothing ready, returns the
// cursor's instance (whose submit refuses instantly).
Frontend& pick_ready_frontend(
    const std::vector<std::unique_ptr<Frontend>>& frontends,
    uint32_t& cursor);

class Frontend {
 public:
  using QueryCallback = std::function<void(const QueryOutcome&)>;

  Frontend(net::Transport& net, uint32_t index, FrontendParams params,
           uint64_t dataset_size, uint64_t seed);

  uint32_t index() const { return index_; }
  net::Address address() const { return frontend_address(index_); }

  // Binds the instance address; on a restart after stop() also pulls the
  // current view from the control plane (the revive path).
  void start();
  // Crash-stops the front-end: unbinds, fails every pending query (its
  // clients see the loss) and forgets readiness until the next view.
  void stop();
  bool alive() const { return alive_; }
  // Has applied a view in THIS life and may serve. False between start()
  // and the first applied view — submit() fails queries instantly during
  // that window, so a revived front-end can never plan off the stale view
  // it kept across the crash.
  bool ready() const { return alive_ && synced_; }

  // --- subscribed control state -----------------------------------------
  uint64_t view_epoch() const { return sub_.epoch(); }
  uint32_t safe_p() const {
    return view_epoch() > 0 ? sub_.view().safe_p : params_.p;
  }
  uint32_t target_p() const {
    return view_epoch() > 0 ? sub_.view().target_p : params_.p;
  }

  // Local liveness knowledge (timeout discovery, reply resurrection) —
  // layered over the view until the next epoch replaces the mirror.
  // Member removal is view-driven only (sync_from_view).
  void node_down(NodeId id);

  // Submits a query; `cb` fires when all sub-queries complete.
  uint64_t submit(QueryCallback cb);
  // Classed submission. With slo_enabled the admission controller may
  // refuse it before any planning work — `cb` then fires immediately with
  // shed == true and harvest 0 (the "reject cheap and early" path).
  uint64_t submit(const QueryRequest& req, QueryCallback cb);

  // --- live ingestion (PAPER §7.4) ---------------------------------------
  // The ingest router shares the control process (it binds
  // kUpdateServerAddr); harnesses attach it here so clients mutate the
  // index through the same face they query it.
  void set_ingest(IngestRouter* router) { ingest_ = router; }
  IngestRouter* ingest() { return ingest_; }
  const IngestRouter* ingest() const { return ingest_; }
  // Client mutation entry points; require an attached router.
  RingId add_document(const pps::FileInfo& doc);
  bool delete_document(RingId doc_id);

  void set_dataset_size(uint64_t d) { dataset_size_ = d; }

  // --- observability -----------------------------------------------------
  // Attaches the cluster tracer; `shard` is the trace ring this front-end
  // writes (its owning reactor shard — 0 under both harnesses today).
  void set_tracer(core::Tracer* tracer, size_t shard) {
    tracer_ = tracer;
    trace_shard_ = shard;
  }
  // Optional registry histogram fed the end-to-end latency of every
  // completed query (the hot-path histogram demonstration).
  void set_latency_histogram(Histogram* h) { latency_hist_ = h; }

  // Stats.
  const SampleSet& delays() const { return delays_; }
  const SampleSet& schedule_times() const { return schedule_times_; }
  uint64_t queries_completed() const { return completed_; }
  uint64_t failures_detected() const { return failures_detected_; }
  // Overload-control stats. queue_hwm is the in-flight map's high-water
  // mark; with slo_enabled the admission cap guarantees hwm ≤ inflight_cap
  // (the scenario safety report audits exactly that). shed_count counts
  // admission refusals; parts_shed counts node-side queue refusals.
  size_t queue_hwm() const { return queue_hwm_; }
  uint64_t shed_count() const {
    return admission_ ? admission_->total_shed() : 0;
  }
  uint64_t parts_shed() const { return parts_shed_; }
  const core::AdmissionController* admission() const {
    return admission_.get();
  }
  double estimated_rate(NodeId id) const;
  const core::Ring& ring() const { return ring_; }

  // Exposed for tests: predicted finish for a share on a node.
  double predict(NodeId node, double share) const;

 private:
  struct PendingPart {
    core::RoarSubQuery sub;
    NodeId node;
    uint64_t timer_id = 0;
    bool done = false;
    // First expiry extends the timer once (the node may be overloaded, not
    // dead); only the second expiry declares failure. Prevents the retry
    // storm a mass failure's backlog would otherwise trigger.
    uint8_t expiries = 0;
  };
  struct PendingQuery {
    uint64_t id;
    uint64_t trace = 0;
    double submit_time;
    double schedule_wall_s = 0.0;
    uint32_t outstanding = 0;
    uint32_t retries = 0;
    uint64_t matches = 0;
    double max_service = 0.0;
    core::QueryClass klass = core::QueryClass::kInteractive;
    double extra_cost_s = 0.0;
    uint32_t parts_shed = 0;
    // False if any responsibility window could not be assigned to a live
    // node (harvest < 100%): the query is answered but reported partial.
    bool full_coverage = true;
    double missing_share = 0.0;  // uncovered fraction of the object space
    std::vector<PendingPart> parts;
    QueryCallback cb;
  };

  class Estimator;

  void handle(net::Address from, net::ByteView payload);
  void on_view_delta(const ViewDeltaMsg& m);
  void sync_from_view();
  void send_ack(net::Address to = kMembershipAddr);
  void send_digest(uint64_t generation);
  void on_reply(const SubQueryReplyMsg& m);
  void on_timeout(uint64_t query_id, uint32_t part_index);
  void send_part(PendingQuery& q, const core::RoarSubQuery& sub);
  void finish_if_done(PendingQuery& q);
  void fail_query(uint64_t id);
  void trace_event(uint64_t trace, core::TraceStage stage, uint32_t part = 0,
                   double dur = 0.0, uint32_t aux = 0);

  net::Transport& net_;
  uint32_t index_;
  FrontendParams params_;
  uint64_t dataset_size_;
  IngestRouter* ingest_ = nullptr;
  core::ViewSubscription sub_;
  core::Ring ring_;  // mirror: view ring + local liveness deltas
  core::QueryPlanner planner_;
  Rng rng_;
  bool alive_ = false;
  bool synced_ = false;  // a view applied since the last start()
  // Invalidates timer chains from a previous life on stop()/start().
  uint64_t life_ = 0;

  struct NodeState {
    Ewma rate;
    double busy_until = 0.0;
    bool alive = true;
  };
  std::unordered_map<NodeId, NodeState> nodes_;

  uint64_t next_query_id_ = 1;
  std::map<uint64_t, PendingQuery> pending_;
  std::unique_ptr<core::AdmissionController> admission_;
  size_t queue_hwm_ = 0;
  uint64_t parts_shed_ = 0;
  SampleSet delays_;
  SampleSet schedule_times_;
  SampleSet digest_window_;  // completions since the last digest
  uint64_t completed_ = 0;
  uint64_t failures_detected_ = 0;
  core::Tracer* tracer_ = nullptr;
  size_t trace_shard_ = 0;
  Histogram* latency_hist_ = nullptr;
};

}  // namespace roar::cluster
