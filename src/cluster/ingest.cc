#include "cluster/ingest.h"

#include <algorithm>

#include "common/logging.h"

namespace roar::cluster {

// Shard boundaries: b(s) = ceil(s * 2^64 / shards). shard_of uses the
// inverse fixed-point multiply, which lands ids exactly in [b(s), b(s+1)).
static uint64_t shard_boundary(uint32_t shard, uint32_t shards) {
  unsigned __int128 x = (static_cast<unsigned __int128>(shard) << 64);
  return static_cast<uint64_t>((x + shards - 1) / shards);
}

uint32_t shard_of(RingId id, uint32_t shards) {
  unsigned __int128 prod =
      static_cast<unsigned __int128>(id.raw()) * shards;
  return static_cast<uint32_t>(prod >> 64);
}

Arc shard_arc(uint32_t shard, uint32_t shards) {
  if (shards <= 1) return Arc(RingId(0), UINT64_MAX);  // (near-)full circle
  uint64_t begin = shard_boundary(shard, shards);
  uint64_t end = shard + 1 == shards ? 0 : shard_boundary(shard + 1, shards);
  return Arc(RingId(begin), end - begin);  // unsigned wrap at the seam
}

void issue_random_ingest_op(IngestRouter& router, Rng& rng,
                            double delete_frac) {
  auto live = router.live_docs();
  if (!live.empty() && rng.next_double() < delete_frac) {
    router.delete_document(live[rng.next_below(live.size())]);
    return;
  }
  router.add_document(pps::CorpusGenerator::sample_document(rng.next_u64()));
}

// ------------------------------------------------------------------ router

IngestRouter::IngestRouter(net::Transport& net, IngestConfig cfg,
                           uint64_t seed,
                           std::shared_ptr<const MatchEngine> engine,
                           RingProvider ring, PProvider safe_p)
    : net_(net),
      cfg_(cfg),
      engine_(std::move(engine)),
      ring_(std::move(ring)),
      safe_p_(std::move(safe_p)),
      rng_(seed),
      shards_(cfg_.shards == 0 ? 1 : cfg_.shards),
      ref_(engine_->base_store()) {
  if (cfg_.shards == 0) cfg_.shards = 1;
}

void IngestRouter::start() {
  net_.bind(kUpdateServerAddr,
            [this](net::Address from, net::Payload payload) {
              (void)from;
              handle(from, payload);
            });
}

void IngestRouter::handle(net::Address from, net::ByteView payload) {
  (void)from;
  auto type = peek_type(payload);
  if (!type) return;
  switch (*type) {
    case MsgType::kUpdateAck:
      if (auto m = UpdateAckMsg::decode(payload)) on_ack(*m);
      break;
    case MsgType::kSyncReq:
      if (auto m = SyncReqMsg::decode(payload)) on_sync_req(*m);
      break;
    default:
      break;
  }
}

RingId IngestRouter::add_document(const pps::FileInfo& doc) {
  UpdateMsg op;
  op.op = UpdateMsg::kAdd;
  op.doc_id = rng_.next_ring_id();
  op.enc_seed = rng_.next_u64();
  op.path = doc.path;
  op.keywords = doc.content_keywords;
  op.size_bytes = doc.size_bytes;
  op.mtime = doc.mtime;
  RingId id = op.doc_id;
  commit(std::move(op));
  return id;
}

bool IngestRouter::delete_document(RingId doc_id) {
  Shard& sh = shards_[shard_of(doc_id, cfg_.shards)];
  bool ingested = sh.live_adds.count(doc_id.raw()) > 0;
  bool in_base = !sh.deleted_base.count(doc_id.raw()) &&
                 engine_->base_store()->slice(Arc(doc_id, 1)).count > 0;
  if (!ingested && !in_base) return false;
  UpdateMsg op;
  op.op = UpdateMsg::kDelete;
  op.doc_id = doc_id;
  commit(std::move(op));
  return true;
}

void IngestRouter::commit(UpdateMsg op) {
  uint32_t shard = shard_of(op.doc_id, cfg_.shards);
  Shard& sh = shards_[shard];
  op.shard = shard;
  op.lsn = sh.next_lsn++;
  ++ops_accepted_;

  // Catalog of live state, for full-segment transfers.
  if (op.op == UpdateMsg::kAdd) {
    sh.live_adds[op.doc_id.raw()] = op;
  } else if (sh.live_adds.erase(op.doc_id.raw()) == 0) {
    sh.deleted_base.insert(op.doc_id.raw());
  }

  sh.log.push_back(op);
  while (sh.log.size() > cfg_.log_retain) {
    sh.log.pop_front();
    ++sh.log_head;
  }

  apply_to_reference(op);

  for (NodeId id : replicas_of(shard)) {
    net_.send(kUpdateServerAddr, node_address(id), op.encode());
    ++updates_sent_;
  }
}

void IngestRouter::apply_to_reference(const UpdateMsg& op) {
  if (op.op == UpdateMsg::kAdd) {
    pps::FileInfo doc;
    doc.path = op.path;
    doc.content_keywords = op.keywords;
    doc.size_bytes = op.size_bytes;
    doc.mtime = op.mtime;
    ref_.add(engine_->encrypt_document(doc, op.doc_id, op.enc_seed));
    ref_.maybe_compact(cfg_.compact_overlay);
  } else {
    ref_.remove(op.doc_id);
    ref_.maybe_compact(cfg_.compact_overlay);
  }
}

std::vector<NodeId> IngestRouter::replicas_of(uint32_t shard) const {
  Arc arc = shard_arc(shard, cfg_.shards);
  core::Ring ring = ring_();
  uint32_t p = safe_p_();
  std::vector<NodeId> out;
  for (const auto& n : ring.nodes()) {
    if (!n.alive) continue;
    if (core::stored_object_arc(ring, n.id, p).intersects(arc)) {
      out.push_back(n.id);
    }
  }
  return out;
}

uint64_t IngestRouter::issued_lsn(uint32_t shard) const {
  return shards_.at(shard).next_lsn - 1;
}

uint64_t IngestRouter::acked_lsn(uint32_t shard, NodeId node) const {
  auto it = acked_.find({shard, node});
  return it == acked_.end() ? 0 : it->second;
}

uint64_t IngestRouter::watermark(uint32_t shard) const {
  std::vector<NodeId> reps = replicas_of(shard);
  if (reps.empty()) return issued_lsn(shard);
  uint64_t low = UINT64_MAX;
  for (NodeId id : reps) low = std::min(low, acked_lsn(shard, id));
  return low;
}

std::vector<RingId> IngestRouter::live_docs() const {
  std::vector<RingId> out;
  for (const auto& sh : shards_) {
    for (const auto& [raw, op] : sh.live_adds) out.push_back(RingId(raw));
  }
  return out;
}

void IngestRouter::on_ack(const UpdateAckMsg& m) {
  if (m.shard >= cfg_.shards) return;
  uint64_t& slot = acked_[{m.shard, m.node}];
  slot = std::max(slot, m.applied_lsn);
}

void IngestRouter::on_sync_req(const SyncReqMsg& m) {
  if (m.shard >= cfg_.shards) return;
  ++syncs_served_;
  const Shard& sh = shards_[m.shard];
  uint64_t issued = sh.next_lsn - 1;
  if (m.have_lsn >= issued) return;  // nothing new; silence is fine, the
                                     // requester asks again next interval

  SyncDataMsg reply;
  reply.shard = m.shard;
  reply.issued_lsn = issued;
  if (m.have_lsn + 1 >= sh.log_head) {
    // Close enough: the contiguous log suffix after the requester's LSN.
    for (const auto& op : sh.log) {
      if (op.lsn > m.have_lsn) reply.ops.push_back(op);
    }
  } else {
    // Too far behind (log trimmed): authoritative live state for the
    // shard — adds of every live ingested doc plus deletes of every
    // removed boot-corpus doc. The receiver reconciles its local shard
    // state against it (see IngestLog::apply_full_segment).
    reply.full_segment = 1;
    for (const auto& [raw, op] : sh.live_adds) reply.ops.push_back(op);
    for (uint64_t raw : sh.deleted_base) {
      UpdateMsg del;
      del.shard = m.shard;
      del.op = UpdateMsg::kDelete;
      del.doc_id = RingId(raw);
      reply.ops.push_back(del);
    }
    ++full_segments_sent_;
  }
  net_.send(kUpdateServerAddr, node_address(m.node), reply.encode());
}

// ----------------------------------------------------------------- replica

IngestLog::IngestLog(net::Transport& net, NodeId node, IngestConfig cfg,
                     std::shared_ptr<const MatchEngine> engine)
    : net_(net),
      node_(node),
      cfg_(cfg),
      engine_(std::move(engine)),
      store_(engine_->base_store()) {
  if (cfg_.shards == 0) cfg_.shards = 1;
}

IngestLog::~IngestLog() { on_kill(); }

void IngestLog::on_start() {
  if (running_) return;
  running_ = true;
  timer_id_ = net_.clock().schedule_after(cfg_.sync_interval_s,
                                          [this] { sync_tick(); });
}

void IngestLog::on_kill() {
  if (!running_) return;
  running_ = false;
  net_.clock().cancel(timer_id_);
}

void IngestLog::apply(const UpdateMsg& m) {
  if (m.op == UpdateMsg::kAdd) {
    pps::FileInfo doc;
    doc.path = m.path;
    doc.content_keywords = m.keywords;
    doc.size_bytes = m.size_bytes;
    doc.mtime = m.mtime;
    store_.add(engine_->encrypt_document(doc, m.doc_id, m.enc_seed));
  } else {
    store_.remove(m.doc_id);
  }
  // Both branches: a delete-only stream grows the tombstone list (and
  // the per-op copy-on-write cost) just like adds grow the delta.
  store_.maybe_compact(cfg_.compact_overlay);
  if (hooks_.charge) hooks_.charge();
  ++ops_applied_;
}

void IngestLog::on_update(const UpdateMsg& m) {
  if (m.shard >= cfg_.shards) return;
  ShardState& st = shards_[m.shard];
  if (m.lsn <= st.applied) {
    ++duplicates_dropped_;
    return;
  }
  if (m.lsn == st.applied + 1) {
    apply(m);
    st.applied = m.lsn;
    drain_and_ack(m.shard);
    return;
  }
  // Gap: a predecessor was lost or is still in flight. Buffer, and ask
  // the router once per gap episode (the periodic sync covers the rest).
  bool first_gap = st.pending.empty();
  st.pending[m.lsn] = m;
  ++gaps_buffered_;
  if (first_gap) request_sync(m.shard);
}

void IngestLog::apply_full_segment(const SyncDataMsg& m) {
  // Authoritative restart for the shard. The local shard state cannot be
  // rebuilt by "clear overlay + replay": compaction may have folded
  // ingested docs into the replica's base segment, where no overlay
  // reset reaches them. Instead, RECONCILE against the segment: the
  // authoritative live set is (boot corpus ∩ shard − segment deletes) ∪
  // segment adds, and the boot corpus is always available as the
  // engine's immutable base store.
  Arc arc = shard_arc(m.shard, cfg_.shards);
  std::set<uint64_t> segment_adds;
  for (const auto& op : m.ops) {
    if (op.op == UpdateMsg::kAdd) segment_adds.insert(op.doc_id.raw());
  }

  auto present = [this](RingId id) {
    auto snap = store_.snapshot();
    if (snap->is_dead(id)) return false;
    Arc point(id, 1);
    return (snap->base && snap->base->slice(point).count > 0) ||
           (snap->delta && snap->delta->slice(point).count > 0);
  };
  auto in_boot = [this](RingId id) {
    return engine_->base_store()->slice(Arc(id, 1)).count > 0;
  };

  // 1) Remove stale ingested docs: live locally, not in the segment's
  // adds, not boot-corpus — e.g. a compacted-in doc whose delete the
  // replica missed while it was down.
  auto snap = store_.snapshot();
  std::vector<uint64_t> local;
  auto collect = [&](const std::shared_ptr<const pps::MetadataStore>& s) {
    if (!s) return;
    auto slice = s->slice(arc);
    for (auto [first, last] : slice.extents) {
      for (size_t i = first; i < last; ++i) {
        const RingId id = s->items()[i].id;
        if (!snap->is_dead(id)) local.push_back(id.raw());
      }
    }
  };
  collect(snap->base);
  collect(snap->delta);
  for (uint64_t raw : local) {
    RingId id(raw);
    if (!segment_adds.count(raw) && !in_boot(id)) {
      UpdateMsg del;
      del.shard = m.shard;
      del.op = UpdateMsg::kDelete;
      del.doc_id = id;
      apply(del);
    }
  }

  // 2) Apply the segment: deletes idempotently, adds only where absent
  // (a compacted-in doc is already present in the base — re-adding it
  // would double-count it).
  for (const auto& op : m.ops) {
    if (op.op == UpdateMsg::kDelete) {
      if (present(op.doc_id)) apply(op);
    } else if (!present(op.doc_id)) {
      apply(op);
    }
  }
  ++full_segments_applied_;
}

void IngestLog::on_sync_data(const SyncDataMsg& m) {
  if (m.shard >= cfg_.shards) return;
  ShardState& st = shards_[m.shard];
  if (m.full_segment) {
    // Staleness guard: a duplicated or reordered segment built before
    // ops we have since applied would reconcile us BACKWARDS — and with
    // the LSN already past its issued_lsn, anti-entropy would never
    // notice the divergence. Drop it; a fresher reply is on its way.
    if (m.issued_lsn < st.applied) {
      ++stale_syncs_dropped_;
      return;
    }
    apply_full_segment(m);
    // Op LSNs in a full segment are not sequenced — the watermark jumps
    // straight to issued_lsn.
    st.applied = std::max(st.applied, m.issued_lsn);
  } else {
    for (const auto& op : m.ops) {
      if (op.lsn <= st.applied) {
        ++duplicates_dropped_;
      } else if (op.lsn == st.applied + 1) {
        apply(op);
        st.applied = op.lsn;
      } else {
        st.pending[op.lsn] = op;
      }
    }
  }
  drain_and_ack(m.shard);
}

void IngestLog::drain_and_ack(uint32_t shard) {
  ShardState& st = shards_[shard];
  // Buffered ops made contiguous by what just applied.
  while (!st.pending.empty()) {
    auto it = st.pending.begin();
    if (it->first <= st.applied) {
      ++duplicates_dropped_;
      st.pending.erase(it);
    } else if (it->first == st.applied + 1) {
      apply(it->second);
      st.applied = it->first;
      st.pending.erase(it);
    } else {
      break;
    }
  }
  UpdateAckMsg ack;
  ack.node = node_;
  ack.shard = shard;
  ack.applied_lsn = st.applied;
  net_.send(node_address(node_), kUpdateServerAddr, ack.encode());
}

void IngestLog::request_sync(uint32_t shard) {
  SyncReqMsg req;
  req.node = node_;
  req.shard = shard;
  req.have_lsn = applied_lsn(shard);
  net_.send(node_address(node_), kUpdateServerAddr, req.encode());
  ++syncs_requested_;
}

void IngestLog::sync_tick() {
  if (!running_) return;
  bool alive = !hooks_.alive || hooks_.alive();
  Arc stored = hooks_.stored_arc ? hooks_.stored_arc() : Arc();
  if (alive && !stored.empty()) {
    for (uint32_t s = 0; s < cfg_.shards; ++s) {
      if (shard_arc(s, cfg_.shards).intersects(stored)) request_sync(s);
    }
  }
  timer_id_ = net_.clock().schedule_after(cfg_.sync_interval_s,
                                          [this] { sync_tick(); });
}

uint64_t IngestLog::applied_lsn(uint32_t shard) const {
  auto it = shards_.find(shard);
  return it == shards_.end() ? 0 : it->second.applied;
}

std::map<uint32_t, uint64_t> IngestLog::applied() const {
  std::map<uint32_t, uint64_t> out;
  for (const auto& [shard, st] : shards_) out[shard] = st.applied;
  return out;
}

// ------------------------------------------------------------- invariants

std::vector<std::string> ingest_safety_report(
    const IngestRouter& router,
    std::span<const IngestReplicaView> replicas) {
  std::vector<std::string> out;
  for (uint32_t s = 0; s < router.shards(); ++s) {
    uint64_t issued = router.issued_lsn(s);
    for (const auto& rep : replicas) {
      if (!rep.log) continue;
      uint64_t applied = rep.log->applied_lsn(s);
      if (applied > issued) {
        out.push_back("node " + std::to_string(rep.node) + " shard " +
                      std::to_string(s) + " applied LSN " +
                      std::to_string(applied) + " exceeds issued " +
                      std::to_string(issued));
      }
      uint64_t acked = router.acked_lsn(s, rep.node);
      if (acked > applied) {
        out.push_back("node " + std::to_string(rep.node) + " shard " +
                      std::to_string(s) + " acked " + std::to_string(acked) +
                      " beyond its applied LSN " + std::to_string(applied));
      }
    }
  }
  return out;
}

std::vector<std::string> ingest_convergence_report(
    const IngestRouter& router,
    std::span<const IngestReplicaView> replicas, bool probe_matches) {
  std::vector<std::string> out;
  auto ref_snap = router.reference().snapshot();
  for (uint32_t s = 0; s < router.shards(); ++s) {
    uint64_t issued = router.issued_lsn(s);
    Arc arc = shard_arc(s, router.shards());
    MatchEngine::Window window;
    window.arc = arc;
    MatchEngine::Result ref{};
    bool ref_done = false;
    for (const auto& rep : replicas) {
      if (!rep.log || !rep.stored.intersects(arc)) continue;
      uint64_t applied = rep.log->applied_lsn(s);
      if (applied != issued) {
        out.push_back("node " + std::to_string(rep.node) + " shard " +
                      std::to_string(s) + " applied LSN " +
                      std::to_string(applied) + " != issued " +
                      std::to_string(issued));
        continue;
      }
      if (!probe_matches) continue;
      if (!ref_done) {
        ref = router.engine().execute(window, *ref_snap);
        ref_done = true;
      }
      MatchEngine::Result got =
          router.engine().execute(window, *rep.log->snapshot());
      if (got.scanned != ref.scanned || got.matches != ref.matches) {
        out.push_back(
            "node " + std::to_string(rep.node) + " shard " +
            std::to_string(s) + " probe (" + std::to_string(got.scanned) +
            " scanned, " + std::to_string(got.matches) +
            " matches) != reference (" + std::to_string(ref.scanned) + ", " +
            std::to_string(ref.matches) + ")");
      }
    }
  }
  return out;
}

}  // namespace roar::cluster
