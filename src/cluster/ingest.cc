#include "cluster/ingest.h"

#include <algorithm>

#include "common/logging.h"

namespace roar::cluster {

// Shard boundaries: b(s) = ceil(s * 2^64 / shards). shard_of uses the
// inverse fixed-point multiply, which lands ids exactly in [b(s), b(s+1)).
static uint64_t shard_boundary(uint32_t shard, uint32_t shards) {
  unsigned __int128 x = (static_cast<unsigned __int128>(shard) << 64);
  return static_cast<uint64_t>((x + shards - 1) / shards);
}

uint32_t shard_of(RingId id, uint32_t shards) {
  unsigned __int128 prod =
      static_cast<unsigned __int128>(id.raw()) * shards;
  return static_cast<uint32_t>(prod >> 64);
}

Arc shard_arc(uint32_t shard, uint32_t shards) {
  if (shards <= 1) return Arc(RingId(0), UINT64_MAX);  // (near-)full circle
  uint64_t begin = shard_boundary(shard, shards);
  uint64_t end = shard + 1 == shards ? 0 : shard_boundary(shard + 1, shards);
  return Arc(RingId(begin), end - begin);  // unsigned wrap at the seam
}

void issue_random_ingest_op(IngestRouter& router, Rng& rng,
                            double delete_frac) {
  auto live = router.live_docs();
  if (!live.empty() && rng.next_double() < delete_frac) {
    router.delete_document(live[rng.next_below(live.size())]);
    return;
  }
  router.add_document(pps::CorpusGenerator::sample_document(rng.next_u64()));
}

// ------------------------------------------------------------------ router

IngestRouter::IngestRouter(net::Transport& net, IngestConfig cfg,
                           uint64_t seed,
                           std::shared_ptr<const MatchEngine> engine,
                           RingProvider ring, PProvider safe_p)
    : net_(net),
      cfg_(cfg),
      engine_(std::move(engine)),
      ring_(std::move(ring)),
      safe_p_(std::move(safe_p)),
      rng_(seed),
      shards_(cfg_.shards == 0 ? 1 : cfg_.shards),
      ref_(engine_->base_store()) {
  if (cfg_.shards == 0) cfg_.shards = 1;
}

IngestRouter::~IngestRouter() {
  if (retransmit_armed_) net_.clock().cancel(retransmit_timer_);
}

void IngestRouter::start() {
  net_.bind(kUpdateServerAddr,
            [this](net::Address from, net::Payload payload) {
              (void)from;
              handle(from, payload);
            });
}

void IngestRouter::trace_event(uint64_t trace, core::TraceStage stage,
                               uint32_t actor, uint32_t part, uint32_t aux) {
  if (!tracer_) return;
  tracer_->record(trace_shard_, trace, stage, actor, part,
                  net_.clock().now(), 0.0, aux);
}

void IngestRouter::handle(net::Address from, net::ByteView payload) {
  (void)from;
  auto type = peek_type(payload);
  if (!type) return;
  switch (*type) {
    case MsgType::kUpdateAck:
      if (auto m = UpdateAckMsg::decode(payload)) on_ack(*m);
      break;
    case MsgType::kSyncReq:
      if (auto m = SyncReqMsg::decode(payload)) on_sync_req(*m);
      break;
    default:
      break;
  }
}

RingId IngestRouter::add_document(const pps::FileInfo& doc) {
  UpdateMsg op;
  op.op = UpdateMsg::kAdd;
  op.doc_id = rng_.next_ring_id();
  op.enc_seed = rng_.next_u64();
  op.path = doc.path;
  op.keywords = doc.content_keywords;
  op.size_bytes = doc.size_bytes;
  op.mtime = doc.mtime;
  RingId id = op.doc_id;
  commit(std::move(op));
  return id;
}

bool IngestRouter::delete_document(RingId doc_id) {
  Shard& sh = shards_[shard_of(doc_id, cfg_.shards)];
  bool ingested = sh.live_adds.count(doc_id.raw()) > 0;
  bool in_base = !sh.deleted_base.count(doc_id.raw()) &&
                 engine_->base_store()->slice(Arc(doc_id, 1)).count > 0;
  if (!ingested && !in_base) return false;
  UpdateMsg op;
  op.op = UpdateMsg::kDelete;
  op.doc_id = doc_id;
  commit(std::move(op));
  return true;
}

void IngestRouter::commit(UpdateMsg op) {
  uint32_t shard = shard_of(op.doc_id, cfg_.shards);
  Shard& sh = shards_[shard];
  op.shard = shard;
  op.lsn = sh.next_lsn++;
  // Deterministic end-to-end trace id, carried on every UPDATE carrying
  // this op (first send, retransmits, sync chunks, full segments).
  op.trace = core::ingest_trace_id(shard, op.lsn);
  ++ops_accepted_;
  TraceIdScope log_scope(op.trace);
  trace_event(op.trace, core::TraceStage::kUpdateIssued, shard, shard,
              op.op);

  // Catalog of live state, for full-segment transfers.
  if (op.op == UpdateMsg::kAdd) {
    sh.live_adds[op.doc_id.raw()] = op;
  } else if (sh.live_adds.erase(op.doc_id.raw()) == 0) {
    sh.deleted_base.insert(op.doc_id.raw());
  }

  sh.log.push_back(op);
  while (sh.log.size() > cfg_.log_retain) {
    sh.log.pop_front();
    ++sh.log_head;
  }

  apply_to_reference(op);

  uint64_t lsn = op.lsn;
  for (NodeId id : replicas_of(shard)) offer(id, shard, lsn);
}

// --------------------------------------------------------- flow control

IngestRouter::Peer& IngestRouter::peer(NodeId id) {
  auto [it, fresh] = peers_.try_emplace(id);
  if (fresh) it->second.cwnd = std::max(1.0, cfg_.window_initial);
  return it->second;
}

IngestRouter::FlowStats IngestRouter::flow(NodeId node) const {
  auto it = peers_.find(node);
  if (it == peers_.end()) {
    return {std::max(1.0, cfg_.window_initial), 0, 0};
  }
  return {it->second.cwnd, it->second.outstanding.size(),
          it->second.queue.size()};
}

void IngestRouter::offer(NodeId to, uint32_t shard, uint64_t lsn) {
  Peer& p = peer(to);
  if (p.outstanding.size() < static_cast<size_t>(p.cwnd)) {
    if (send_logged(to, shard, lsn)) {
      OutOp out;
      out.sent_at = net_.clock().now();
      out.rto_s = cfg_.rto_initial_s;
      p.outstanding[{shard, lsn}] = out;
      arm_retransmit();
    } else {
      ++flow_abandoned_;  // trimmed already; anti-entropy's problem
    }
  } else {
    p.queue.emplace_back(shard, lsn);
  }
}

bool IngestRouter::send_logged(NodeId to, uint32_t shard, uint64_t lsn) {
  const Shard& sh = shards_[shard];
  if (lsn < sh.log_head || lsn >= sh.log_head + sh.log.size()) return false;
  const UpdateMsg& op = sh.log[lsn - sh.log_head];
  net_.send(kUpdateServerAddr, node_address(to), op.encode());
  ++updates_sent_;
  return true;
}

void IngestRouter::pump(NodeId id, Peer& p) {
  while (!p.queue.empty() &&
         p.outstanding.size() < static_cast<size_t>(p.cwnd)) {
    auto [shard, lsn] = p.queue.front();
    p.queue.pop_front();
    if (lsn <= acked_lsn(shard, id)) continue;  // acked while queued
    if (send_logged(id, shard, lsn)) {
      OutOp out;
      out.sent_at = net_.clock().now();
      out.rto_s = cfg_.rto_initial_s;
      p.outstanding[{shard, lsn}] = out;
    } else {
      ++flow_abandoned_;
    }
  }
  if (!p.outstanding.empty()) arm_retransmit();
}

void IngestRouter::arm_retransmit() {
  if (retransmit_armed_) return;
  retransmit_armed_ = true;
  retransmit_timer_ = net_.clock().schedule_after(
      cfg_.retransmit_tick_s, [this] { retransmit_scan(); });
}

void IngestRouter::retransmit_scan() {
  retransmit_armed_ = false;
  double now = net_.clock().now();
  bool any_outstanding = false;
  for (auto& [id, p] : peers_) {
    bool lost = false;
    for (auto it = p.outstanding.begin(); it != p.outstanding.end();) {
      OutOp& out = it->second;
      if (now - out.sent_at < out.rto_s) {
        ++it;
        continue;
      }
      lost = true;
      auto [shard, lsn] = it->first;
      if (out.retries >= cfg_.retransmit_max ||
          !send_logged(id, shard, lsn)) {
        ++flow_abandoned_;  // retry budget spent or log trimmed
        it = p.outstanding.erase(it);
        continue;
      }
      ++retransmits_;
      ++out.retries;
      out.sent_at = now;
      out.rto_s = std::min(cfg_.rto_max_s, out.rto_s * cfg_.rto_backoff);
      ++it;
    }
    if (lost) {
      // One multiplicative decrease per peer per scan, however many ops
      // timed out together — a loss EVENT, not a per-packet penalty.
      ++loss_events_;
      p.cwnd = std::max(1.0, p.cwnd * cfg_.window_beta);
    }
    pump(id, p);
    any_outstanding = any_outstanding || !p.outstanding.empty();
  }
  if (any_outstanding) arm_retransmit();
}

void IngestRouter::apply_to_reference(const UpdateMsg& op) {
  if (op.op == UpdateMsg::kAdd) {
    pps::FileInfo doc;
    doc.path = op.path;
    doc.content_keywords = op.keywords;
    doc.size_bytes = op.size_bytes;
    doc.mtime = op.mtime;
    ref_.add(engine_->encrypt_document(doc, op.doc_id, op.enc_seed));
    ref_.maybe_compact(cfg_.compact_overlay);
  } else {
    ref_.remove(op.doc_id);
    ref_.maybe_compact(cfg_.compact_overlay);
  }
}

std::vector<NodeId> IngestRouter::replicas_of(uint32_t shard) const {
  Arc arc = shard_arc(shard, cfg_.shards);
  core::Ring ring = ring_();
  uint32_t p = safe_p_();
  std::vector<NodeId> out;
  for (const auto& n : ring.nodes()) {
    if (!n.alive) continue;
    if (core::stored_object_arc(ring, n.id, p).intersects(arc)) {
      out.push_back(n.id);
    }
  }
  return out;
}

uint64_t IngestRouter::issued_lsn(uint32_t shard) const {
  return shards_.at(shard).next_lsn - 1;
}

uint64_t IngestRouter::acked_lsn(uint32_t shard, NodeId node) const {
  auto it = acked_.find({shard, node});
  return it == acked_.end() ? 0 : it->second;
}

uint64_t IngestRouter::watermark(uint32_t shard) const {
  std::vector<NodeId> reps = replicas_of(shard);
  if (reps.empty()) return issued_lsn(shard);
  uint64_t low = UINT64_MAX;
  for (NodeId id : reps) low = std::min(low, acked_lsn(shard, id));
  return low;
}

std::vector<RingId> IngestRouter::live_docs() const {
  std::vector<RingId> out;
  for (const auto& sh : shards_) {
    for (const auto& [raw, op] : sh.live_adds) out.push_back(RingId(raw));
  }
  return out;
}

void IngestRouter::on_ack(const UpdateAckMsg& m) {
  if (m.shard >= cfg_.shards) return;
  uint64_t& slot = acked_[{m.shard, m.node}];
  slot = std::max(slot, m.applied_lsn);

  // Credit return: the watermark clears every outstanding op it covers in
  // one sweep ((shard, lsn) keys are ordered, so the covered range is a
  // contiguous prefix of the shard's entries).
  Peer& p = peer(m.node);
  size_t cleared = 0;
  auto it = p.outstanding.lower_bound({m.shard, 0});
  while (it != p.outstanding.end() && it->first.first == m.shard &&
         it->first.second <= m.applied_lsn) {
    it = p.outstanding.erase(it);
    ++cleared;
  }
  if (cleared > 0) {
    // Additive increase, ack-paced: +window_additive per full window's
    // worth of clean credit returns.
    p.cwnd = std::min(cfg_.window_max,
                      p.cwnd + cfg_.window_additive * cleared /
                                   std::max(1.0, p.cwnd));
  }
  pump(m.node, p);
}

void IngestRouter::on_sync_req(const SyncReqMsg& m) {
  if (m.shard >= cfg_.shards) return;
  ++syncs_served_;
  const Shard& sh = shards_[m.shard];
  uint64_t issued = sh.next_lsn - 1;
  if (m.have_lsn >= issued) return;  // nothing new; silence is fine, the
                                     // requester asks again next interval

  // Chunk budget: at most sync_chunk_ops ops, stop growing past
  // sync_chunk_bytes of encoded payload; always at least one op so every
  // reply makes progress. The receiver credit-clocks the stream — each
  // applied chunk triggers the request for the next.
  size_t budget_ops = std::max<size_t>(1, cfg_.sync_chunk_ops);
  auto budget_full = [&](const SyncDataMsg& r, size_t bytes) {
    return r.ops.size() >= budget_ops ||
           (!r.ops.empty() && bytes >= cfg_.sync_chunk_bytes);
  };

  SyncDataMsg reply;
  reply.shard = m.shard;
  reply.issued_lsn = issued;
  reply.trace = m.trace;  // echo the clocking request's sync trace id
  size_t bytes = 0;
  if (m.have_lsn + 1 >= sh.log_head) {
    // Close enough: a contiguous log-suffix chunk after the requester's
    // LSN. The receiver re-requests while its applied LSN trails
    // issued_lsn, so the stream continues without a full round of the
    // sync interval per chunk.
    for (const auto& op : sh.log) {
      if (op.lsn <= m.have_lsn) continue;
      if (budget_full(reply, bytes)) break;
      reply.ops.push_back(op);
      bytes += op.encode().size();
    }
  } else {
    // Too far behind (log trimmed): authoritative live state for the
    // shard — adds of every live ingested doc plus deletes of every
    // removed boot-corpus doc, streamed in deterministic order (adds by
    // doc id, then base deletes by doc id) as credit-clocked chunks. The
    // generation stamp is issued_lsn: any commit changes it, which
    // restarts a stale stream from offset 0. The receiver reconciles
    // only once all total_ops chunks arrive (IngestLog::on_sync_data).
    reply.full_segment = 1;
    reply.total_ops = sh.live_adds.size() + sh.deleted_base.size();
    uint64_t start =
        m.segment_lsn == issued
            ? std::min<uint64_t>(m.chunk_offset, reply.total_ops)
            : 0;
    reply.chunk_offset = start;
    if (start == 0) ++full_segments_sent_;
    uint64_t pos = 0;
    for (const auto& [raw, op] : sh.live_adds) {
      if (pos++ < start) continue;
      if (budget_full(reply, bytes)) break;
      reply.ops.push_back(op);
      bytes += op.encode().size();
    }
    for (uint64_t raw : sh.deleted_base) {
      if (pos++ < start) continue;
      if (budget_full(reply, bytes)) break;
      UpdateMsg del;
      del.shard = m.shard;
      del.op = UpdateMsg::kDelete;
      del.doc_id = RingId(raw);
      reply.ops.push_back(del);
      bytes += del.encode().size();
    }
  }
  ++sync_chunks_sent_;
  trace_event(m.trace, core::TraceStage::kSyncChunk, m.node, m.shard,
              static_cast<uint32_t>(reply.ops.size()));
  net_.send(kUpdateServerAddr, node_address(m.node), reply.encode());
}

// ----------------------------------------------------------------- replica

IngestLog::IngestLog(net::Transport& net, NodeId node, IngestConfig cfg,
                     std::shared_ptr<const MatchEngine> engine)
    : net_(net),
      node_(node),
      cfg_(cfg),
      engine_(std::move(engine)),
      store_(engine_->base_store()) {
  if (cfg_.shards == 0) cfg_.shards = 1;
}

IngestLog::~IngestLog() { on_kill(); }

void IngestLog::on_start() {
  if (running_) return;
  running_ = true;
  timer_id_ = net_.clock().schedule_after(cfg_.sync_interval_s,
                                          [this] { sync_tick(); });
}

void IngestLog::on_kill() {
  if (!running_) return;
  running_ = false;
  net_.clock().cancel(timer_id_);
}

void IngestLog::trace_event(uint64_t trace, core::TraceStage stage,
                            uint32_t part, uint32_t aux) {
  if (!tracer_) return;
  tracer_->record(trace_shard_, trace, stage, node_, part,
                  net_.clock().now(), 0.0, aux);
}

void IngestLog::apply(const UpdateMsg& m, bool charge) {
  TraceIdScope log_scope(m.trace);
  trace_event(m.trace, core::TraceStage::kUpdateApplied, m.shard,
              static_cast<uint32_t>(m.op));
  if (m.op == UpdateMsg::kAdd) {
    pps::FileInfo doc;
    doc.path = m.path;
    doc.content_keywords = m.keywords;
    doc.size_bytes = m.size_bytes;
    doc.mtime = m.mtime;
    store_.add(engine_->encrypt_document(doc, m.doc_id, m.enc_seed));
  } else {
    store_.remove(m.doc_id);
  }
  // Both branches: a delete-only stream grows the tombstone list (and
  // the per-op copy-on-write cost) just like adds grow the delta.
  store_.maybe_compact(cfg_.compact_overlay);
  if (charge && hooks_.charge) hooks_.charge();
  ++ops_applied_;
}

void IngestLog::on_update(const UpdateMsg& m) {
  if (m.shard >= cfg_.shards) return;
  ShardState& st = shards_[m.shard];
  if (m.lsn <= st.applied) {
    ++duplicates_dropped_;
    return;
  }
  if (m.lsn == st.applied + 1) {
    apply(m);
    st.applied = m.lsn;
    drain_and_ack(m.shard);
    return;
  }
  // Gap: a predecessor was lost or is still in flight. Buffer, and ask
  // the router once per gap episode (the periodic sync covers the rest).
  bool first_gap = st.pending.empty();
  buffer_pending(st, m, true);
  if (first_gap) request_sync(m.shard);
}

void IngestLog::buffer_pending(ShardState& st, const UpdateMsg& m,
                               bool count_gap) {
  if (st.pending.count(m.lsn)) {
    ++duplicates_dropped_;
    return;
  }
  st.pending[m.lsn] = m;
  if (count_gap) ++gaps_buffered_;
  size_t cap = std::max<size_t>(1, cfg_.pending_cap);
  if (st.pending.size() > cap) {
    // At the cap, drop the LARGEST buffered LSN (possibly the one just
    // inserted): it is the farthest from becoming contiguous, and resync
    // re-fetches it anyway. The buffer never exceeds pending_cap — the
    // bounded-memory invariant ingest_safety_report enforces.
    st.pending.erase(std::prev(st.pending.end()));
    ++pending_evictions_;
  }
  pending_hwm_ = std::max(pending_hwm_, st.pending.size());
}

size_t IngestLog::pending_size(uint32_t shard) const {
  auto it = shards_.find(shard);
  return it == shards_.end() ? 0 : it->second.pending.size();
}

void IngestLog::apply_full_segment(uint32_t shard,
                                   std::span<const UpdateMsg> ops) {
  // Authoritative restart for the shard. The local shard state cannot be
  // rebuilt by "clear overlay + replay": compaction may have folded
  // ingested docs into the replica's base segment, where no overlay
  // reset reaches them. Instead, RECONCILE against the segment: the
  // authoritative live set is (boot corpus ∩ shard − segment deletes) ∪
  // segment adds, and the boot corpus is always available as the
  // engine's immutable base store.
  Arc arc = shard_arc(shard, cfg_.shards);
  std::set<uint64_t> segment_adds;
  for (const auto& op : ops) {
    if (op.op == UpdateMsg::kAdd) segment_adds.insert(op.doc_id.raw());
  }

  auto present = [this](RingId id) {
    auto snap = store_.snapshot();
    if (snap->is_dead(id)) return false;
    Arc point(id, 1);
    return (snap->base && snap->base->slice(point).count > 0) ||
           (snap->delta && snap->delta->slice(point).count > 0);
  };
  auto in_boot = [this](RingId id) {
    return engine_->base_store()->slice(Arc(id, 1)).count > 0;
  };

  // 1) Remove stale ingested docs: live locally, not in the segment's
  // adds, not boot-corpus — e.g. a compacted-in doc whose delete the
  // replica missed while it was down.
  auto snap = store_.snapshot();
  std::vector<uint64_t> local;
  auto collect = [&](const std::shared_ptr<const pps::MetadataStore>& s) {
    if (!s) return;
    auto slice = s->slice(arc);
    for (auto [first, last] : slice.extents) {
      for (size_t i = first; i < last; ++i) {
        const RingId id = s->items()[i].id;
        if (!snap->is_dead(id)) local.push_back(id.raw());
      }
    }
  };
  collect(snap->base);
  collect(snap->delta);
  for (uint64_t raw : local) {
    RingId id(raw);
    if (!segment_adds.count(raw) && !in_boot(id)) {
      UpdateMsg del;
      del.shard = shard;
      del.op = UpdateMsg::kDelete;
      del.doc_id = id;
      apply(del);
    }
  }

  // 2) Apply the segment: deletes idempotently, adds only where absent
  // (a compacted-in doc is already present in the base — re-adding it
  // would double-count it). Charges were prepaid at chunk receipt.
  for (const auto& op : ops) {
    if (op.op == UpdateMsg::kDelete) {
      if (present(op.doc_id)) apply(op, /*charge=*/false);
    } else if (!present(op.doc_id)) {
      apply(op, /*charge=*/false);
    }
  }
  ++full_segments_applied_;
}

void IngestLog::on_sync_data(const SyncDataMsg& m) {
  if (m.shard >= cfg_.shards) return;
  ShardState& st = shards_[m.shard];
  if (m.full_segment) {
    // Staleness guard: a duplicated or reordered segment built before
    // ops we have since applied would reconcile us BACKWARDS — and with
    // the LSN already past its issued_lsn, anti-entropy would never
    // notice the divergence. Drop it; a fresher reply is on its way.
    if (m.issued_lsn < st.applied) {
      ++stale_syncs_dropped_;
      if (st.full_active && st.full_gen <= st.applied) {
        // The stream we were accumulating is itself stale — abandon it
        // rather than re-requesting chunks of a dead generation.
        st.full_active = false;
        st.full_buf.clear();
        kick_full_wait();
      }
      return;
    }
    // Chunked accumulation, pinned to the generation stamp (issued_lsn):
    // chunks append strictly in order; anything else — a duplicate, a
    // reorder, a chunk of a superseded generation — is dropped, and the
    // resume fields in the next SYNC_REQ re-fetch from the right offset.
    if (!st.full_active || st.full_gen != m.issued_lsn) {
      if (m.chunk_offset != 0) {
        ++sync_chunks_dropped_;  // mid-stream chunk of a stream we are
        return;                  // not accumulating
      }
      if (full_stream_busy(m.shard)) {
        // Per-replica credit: one full-segment stream at a time, so the
        // pacing delay bounds the NODE's resync duty cycle no matter how
        // many shards need catching up. Defer this shard; it restarts
        // when the active stream finishes (or at the next sync tick).
        ++sync_chunks_dropped_;
        full_wait_.insert(m.shard);
        return;
      }
      full_wait_.erase(m.shard);
      st.full_active = true;
      st.full_gen = m.issued_lsn;
      st.full_total = m.total_ops;
      st.full_buf.clear();
    } else if (m.chunk_offset != st.full_buf.size() ||
               m.total_ops != st.full_total) {
      ++sync_chunks_dropped_;
      return;
    }
    st.full_buf.insert(st.full_buf.end(), m.ops.begin(), m.ops.end());
    ++full_chunks_received_;
    // Pay the per-op capacity charge NOW, as the chunk is decoded and
    // staged — the whole point of chunking is that the §7.3.4 apply cost
    // lands spread across the paced transfer instead of bursting onto
    // the query pipeline when the segment completes.
    if (hooks_.charge) {
      for (size_t i = 0; i < m.ops.size(); ++i) hooks_.charge();
    }
    if (st.full_buf.size() < st.full_total) {
      // Credit return: pull the next chunk after the pacing delay instead
      // of waiting a full sync interval per chunk.
      schedule_chunk_request(m.shard);
      return;
    }
    std::vector<UpdateMsg> ops = std::move(st.full_buf);
    st.full_active = false;
    st.full_buf.clear();
    apply_full_segment(m.shard, ops);
    // Op LSNs in a full segment are not sequenced — the watermark jumps
    // straight to the segment's generation.
    st.applied = std::max(st.applied, st.full_gen);
    kick_full_wait();
  } else {
    for (const auto& op : m.ops) {
      if (op.lsn <= st.applied) {
        ++duplicates_dropped_;
      } else if (op.lsn == st.applied + 1) {
        apply(op);
        st.applied = op.lsn;
      } else {
        buffer_pending(st, op, false);
      }
    }
  }
  drain_and_ack(m.shard);
  // Credit return for an incremental stream: still behind the router with
  // nothing buffered to bridge the gap — pull the next chunk after the
  // pacing delay instead of waiting out the sync interval.
  if (!m.full_segment && st.pending.empty() && st.applied < m.issued_lsn) {
    schedule_chunk_request(m.shard);
  }
}

bool IngestLog::full_stream_busy(uint32_t shard) const {
  for (const auto& [s, st] : shards_) {
    if (s != shard && st.full_active) return true;
  }
  return false;
}

void IngestLog::kick_full_wait() {
  if (full_wait_.empty()) return;
  uint32_t next = *full_wait_.begin();
  full_wait_.erase(full_wait_.begin());
  // A plain SYNC_REQ after the pacing delay: if the shard caught up via
  // incremental ops in the meantime the router simply has nothing for it.
  schedule_chunk_request(next);
}

void IngestLog::schedule_chunk_request(uint32_t shard) {
  if (cfg_.sync_credit_delay_s <= 0) {
    request_sync(shard);
    return;
  }
  net_.clock().schedule_after(cfg_.sync_credit_delay_s, [this, shard] {
    if (!running_) return;
    if (hooks_.alive && !hooks_.alive()) return;
    // A stale extra request is harmless: the router answers only when the
    // requester is behind, and mis-offset chunks are dropped on arrival.
    request_sync(shard);
  });
}

void IngestLog::drain_and_ack(uint32_t shard) {
  ShardState& st = shards_[shard];
  // Buffered ops made contiguous by what just applied.
  while (!st.pending.empty()) {
    auto it = st.pending.begin();
    if (it->first <= st.applied) {
      ++duplicates_dropped_;
      st.pending.erase(it);
    } else if (it->first == st.applied + 1) {
      apply(it->second);
      st.applied = it->first;
      st.pending.erase(it);
    } else {
      break;
    }
  }
  if (st.full_active && st.full_gen <= st.applied) {
    // Updates overtook the full-segment stream's generation: reconciling
    // it now would be a no-op at best. Drop the accumulation.
    st.full_active = false;
    st.full_buf.clear();
    kick_full_wait();
  }
  UpdateAckMsg ack;
  ack.node = node_;
  ack.shard = shard;
  ack.applied_lsn = st.applied;
  net_.send(node_address(node_), kUpdateServerAddr, ack.encode());
}

void IngestLog::request_sync(uint32_t shard) {
  SyncReqMsg req;
  req.node = node_;
  req.shard = shard;
  req.trace = core::sync_trace_id(node_, shard);
  req.have_lsn = applied_lsn(shard);
  trace_event(req.trace, core::TraceStage::kSyncReq, shard);
  auto it = shards_.find(shard);
  if (it != shards_.end() && it->second.full_active) {
    // Resume the in-progress full-segment stream: the router serves from
    // chunk_offset iff segment_lsn still matches its issued LSN,
    // otherwise it restarts the stream at offset 0.
    req.segment_lsn = it->second.full_gen;
    req.chunk_offset = it->second.full_buf.size();
  }
  net_.send(node_address(node_), kUpdateServerAddr, req.encode());
  ++syncs_requested_;
}

void IngestLog::sync_tick() {
  if (!running_) return;
  bool alive = !hooks_.alive || hooks_.alive();
  Arc stored = hooks_.stored_arc ? hooks_.stored_arc() : Arc();
  if (alive && !stored.empty()) {
    for (uint32_t s = 0; s < cfg_.shards; ++s) {
      if (shard_arc(s, cfg_.shards).intersects(stored)) request_sync(s);
    }
  }
  timer_id_ = net_.clock().schedule_after(cfg_.sync_interval_s,
                                          [this] { sync_tick(); });
}

uint64_t IngestLog::applied_lsn(uint32_t shard) const {
  auto it = shards_.find(shard);
  return it == shards_.end() ? 0 : it->second.applied;
}

std::map<uint32_t, uint64_t> IngestLog::applied() const {
  std::map<uint32_t, uint64_t> out;
  for (const auto& [shard, st] : shards_) out[shard] = st.applied;
  return out;
}

// ------------------------------------------------------------- invariants

std::vector<std::string> ingest_safety_report(
    const IngestRouter& router,
    std::span<const IngestReplicaView> replicas) {
  std::vector<std::string> out;
  for (uint32_t s = 0; s < router.shards(); ++s) {
    uint64_t issued = router.issued_lsn(s);
    for (const auto& rep : replicas) {
      if (!rep.log) continue;
      uint64_t applied = rep.log->applied_lsn(s);
      if (applied > issued) {
        out.push_back("node " + std::to_string(rep.node) + " shard " +
                      std::to_string(s) + " applied LSN " +
                      std::to_string(applied) + " exceeds issued " +
                      std::to_string(issued));
      }
      uint64_t acked = router.acked_lsn(s, rep.node);
      if (acked > applied) {
        out.push_back("node " + std::to_string(rep.node) + " shard " +
                      std::to_string(s) + " acked " + std::to_string(acked) +
                      " beyond its applied LSN " + std::to_string(applied));
      }
    }
  }
  // Flow-control bounds, checkable at ANY instant: the AIMD window stays
  // in [1, window_max], in-flight never exceeds the window ceiling, and
  // the out-of-order buffer never exceeds its cap (the bounded-memory
  // guarantee the pending_cap bugfix exists for).
  const IngestConfig& cfg = router.config();
  for (const auto& rep : replicas) {
    if (!rep.log) continue;
    auto f = router.flow(rep.node);
    if (f.cwnd < 1.0 || f.cwnd > cfg.window_max + 1e-9) {
      out.push_back("node " + std::to_string(rep.node) + " cwnd " +
                    std::to_string(f.cwnd) + " outside [1, " +
                    std::to_string(cfg.window_max) + "]");
    }
    size_t ceiling = static_cast<size_t>(cfg.window_max) + 1;
    if (f.in_flight > ceiling) {
      out.push_back("node " + std::to_string(rep.node) + " in-flight " +
                    std::to_string(f.in_flight) + " exceeds window ceiling " +
                    std::to_string(ceiling));
    }
    size_t cap = std::max<size_t>(1, cfg.pending_cap);
    if (rep.log->pending_hwm() > cap) {
      out.push_back("node " + std::to_string(rep.node) +
                    " pending high-water mark " +
                    std::to_string(rep.log->pending_hwm()) +
                    " exceeds pending_cap " + std::to_string(cap));
    }
  }
  return out;
}

std::vector<std::string> ingest_convergence_report(
    const IngestRouter& router,
    std::span<const IngestReplicaView> replicas, bool probe_matches) {
  std::vector<std::string> out;
  auto ref_snap = router.reference().snapshot();
  for (uint32_t s = 0; s < router.shards(); ++s) {
    uint64_t issued = router.issued_lsn(s);
    Arc arc = shard_arc(s, router.shards());
    MatchEngine::Window window;
    window.arc = arc;
    MatchEngine::Result ref{};
    bool ref_done = false;
    for (const auto& rep : replicas) {
      if (!rep.log || !rep.stored.intersects(arc)) continue;
      uint64_t applied = rep.log->applied_lsn(s);
      if (applied != issued) {
        out.push_back("node " + std::to_string(rep.node) + " shard " +
                      std::to_string(s) + " applied LSN " +
                      std::to_string(applied) + " != issued " +
                      std::to_string(issued));
        continue;
      }
      if (!probe_matches) continue;
      if (!ref_done) {
        ref = router.engine().execute(window, *ref_snap);
        ref_done = true;
      }
      MatchEngine::Result got =
          router.engine().execute(window, *rep.log->snapshot());
      if (got.scanned != ref.scanned || got.matches != ref.matches) {
        out.push_back(
            "node " + std::to_string(rep.node) + " shard " +
            std::to_string(s) + " probe (" + std::to_string(got.scanned) +
            " scanned, " + std::to_string(got.matches) +
            " matches) != reference (" + std::to_string(ref.scanned) + ", " +
            std::to_string(ref.matches) + ")");
      }
    }
  }
  return out;
}

}  // namespace roar::cluster
