#include "cluster/node.h"

#include <algorithm>

#include "common/logging.h"

namespace roar::cluster {

NodeRuntime::NodeRuntime(net::Transport& net, NodeParams params,
                         uint64_t dataset_size)
    : net_(net), params_(params), dataset_size_(dataset_size) {}

void NodeRuntime::start() {
  alive_ = true;
  busy_until_ = net_.clock().now();
  net_.bind(address(), [this](net::Address from, net::Bytes payload) {
    handle(from, std::move(payload));
  });
}

void NodeRuntime::kill() {
  alive_ = false;
  net_.unbind(address());
}

Arc NodeRuntime::stored_arc() const {
  if (range_.empty()) return Arc();
  uint64_t repl = circle_fraction(p_);
  RingId begin = range_.begin().advanced_raw(uint64_t{1} - repl);
  return Arc(begin, repl - 1 + range_.length());
}

double NodeRuntime::enqueue_work(double seconds) {
  double now = net_.clock().now();
  double start = std::max(now, busy_until_);
  busy_until_ = start + seconds;
  busy_seconds_ += seconds;
  return busy_until_;
}

void NodeRuntime::handle(net::Address from, net::Bytes payload) {
  auto type = peek_type(payload);
  if (!type) return;  // malformed: drop, as a defensive server must
  switch (*type) {
    case MsgType::kSubQuery:
      if (auto m = SubQueryMsg::decode(payload)) on_subquery(from, *m);
      break;
    case MsgType::kRangePush:
      if (auto m = RangePushMsg::decode(payload)) on_range_push(*m);
      break;
    case MsgType::kFetchOrder:
      if (auto m = FetchOrderMsg::decode(payload)) on_fetch_order(*m);
      break;
    case MsgType::kObjectUpdate:
      if (auto m = ObjectUpdateMsg::decode(payload)) on_update(*m);
      break;
    default:
      break;
  }
}

void NodeRuntime::on_subquery(net::Address from, const SubQueryMsg& m) {
  // Objects this node must match: the intersection of the sub-query's
  // responsibility window with what the node actually stores. For a normal
  // sub-query the window lies entirely in the stored arc; for a §4.4
  // failure-split half it is roughly half the window — each neighbour
  // matches only the objects it holds, which is what keeps split work (and
  // the front-end's share-based predictions) consistent.
  uint64_t window = m.window_begin.distance_to(m.window_end);
  double window_frac;
  if (window == 0 && m.pq <= 1) {
    window_frac = 1.0;  // whole space
  } else {
    Arc window_arc(m.window_begin.advanced_raw(1), window);
    Arc stored = stored_arc();
    window_frac = static_cast<double>(
                      window_arc.intersection_length(stored)) /
                  18446744073709551616.0;
  }
  double count = window_frac * static_cast<double>(dataset_size_);
  double service = count / rate() + params_.subquery_overhead_s;
  double finish = enqueue_work(service);
  ++subqueries_served_;

  SubQueryReplyMsg reply;
  reply.query_id = m.query_id;
  reply.part_id = m.part_id;
  reply.scanned = static_cast<uint64_t>(count);
  // Match count model: queries in the experiments are selective; a small
  // deterministic fraction keeps reply sizes realistic without carrying a
  // real corpus at 43-node scale (the PPS example runs the real matcher).
  reply.matches = static_cast<uint64_t>(count / 10'000.0);
  reply.service_s = service;
  net_.clock().schedule_at(finish, [this, from, reply] {
    net_.send(address(), from, reply.encode());
  });
}

void NodeRuntime::on_range_push(const RangePushMsg& m) {
  range_ = Arc(m.range_begin, m.range_len);
  p_ = m.p;
}

void NodeRuntime::on_fetch_order(const FetchOrderMsg& m) {
  // Download the new objects from the backend filestore at fetch
  // bandwidth; confirm when done. Downloads do not consume matching
  // capacity (the paper's background replication).
  double frac = static_cast<double>(m.arc_len) / 18446744073709551616.0;
  double bytes = frac * static_cast<double>(dataset_size_) *
                 params_.bytes_per_object;
  double secs = bytes / params_.fetch_bandwidth;
  uint32_t new_p = m.new_p;
  net_.clock().schedule_after(secs, [this, new_p] {
    if (!alive_) return;
    p_ = new_p;
    FetchCompleteMsg done;
    done.node = params_.id;
    done.new_p = new_p;
    net_.send(address(), kMembershipAddr, done.encode());
  });
}

void NodeRuntime::on_update(const ObjectUpdateMsg& m) {
  (void)m;
  enqueue_work(params_.update_cost_s);
  ++updates_applied_;
}

}  // namespace roar::cluster
