#include "cluster/node.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/logging.h"
#include "core/slo.h"

namespace roar::cluster {

NodeRuntime::NodeRuntime(net::Transport& net, NodeParams params,
                         uint64_t dataset_size)
    : net_(net), params_(params), dataset_size_(dataset_size) {}

void NodeRuntime::start() {
  alive_ = true;
  ++life_;
  busy_until_ = net_.clock().now();
  net_.bind(address(), [this](net::Address from, net::Payload payload) {
    handle(from, payload);
  });
  if (sub_.epoch() > 0) {
    // Restart after a crash: the view is stale by an unknown number of
    // epochs, and any in-flight §4.5 duty died with the process. Pull the
    // current view; applying it re-derives both.
    ViewPullMsg pull;
    pull.subscriber = address();
    pull.have_epoch = sub_.epoch();
    net_.send(address(), kMembershipAddr, pull.encode());
  }
  if (params_.stats_interval_s > 0) {
    stats_busy_mark_ = busy_seconds_;
    uint64_t life = life_;
    net_.clock().schedule_after(params_.stats_interval_s,
                                [this, life] { stats_tick(life); });
  }
  if (ingest_) ingest_->on_start();  // resume the anti-entropy sessions
}

void NodeRuntime::kill() {
  alive_ = false;
  ++life_;  // kills the stats timer chain of this life
  net_.unbind(address());
  // Batched-but-unexecuted work vanishes with the crash; in-flight pool
  // tasks finish on their lanes but their completions see alive_ == false
  // and drop the reply. An in-flight §4.5 download dies too — but data
  // already fetched (fetch_done_for_p_) survives on disk.
  pending_subs_.clear();
  fetch_running_for_p_ = 0;
  ++fetch_gen_;
  // Relay duty and queued forwards die with the process; a crashed node's
  // subtree is repaired by the control plane's laggard path. The interest
  // registration may be re-assigned stale on the control side — re-send
  // it on the first reconcile of the next life.
  children_.clear();
  ack_to_ = kMembershipAddr;
  interest_sent_ = false;
  // The ingest log and its store survive (they are the node's disk); only
  // the sync timer stops until a revival restarts it.
  if (ingest_) ingest_->on_kill();
}

void NodeRuntime::stats_tick(uint64_t life) {
  if (life != life_ || !alive_) return;
  NodeStatsMsg msg;
  msg.node = params_.id;
  msg.busy_fraction = std::min(
      1.0, (busy_seconds_ - stats_busy_mark_) / params_.stats_interval_s);
  msg.observed_rate = rate();
  stats_busy_mark_ = busy_seconds_;
  net_.send(address(), kMembershipAddr, msg.encode());
  net_.clock().schedule_after(params_.stats_interval_s,
                              [this, life] { stats_tick(life); });
}

void NodeRuntime::set_executor(NodeExecutor exec) {
  exec_ = std::move(exec);
  if (exec_.batch_max == 0) exec_.batch_max = 1;
}

void NodeRuntime::set_match_engine(
    std::shared_ptr<const MatchEngine> engine) {
  engine_ = std::move(engine);
}

void NodeRuntime::enable_ingest(IngestConfig cfg,
                                std::shared_ptr<const MatchEngine> engine) {
  ingest_ = std::make_unique<IngestLog>(net_, params_.id, cfg,
                                        std::move(engine));
  IngestLog::Hooks hooks;
  hooks.stored_arc = [this] { return stored_arc(); };
  // §7.3.4: each applied update consumes matching capacity on the node's
  // modeled pipeline.
  hooks.charge = [this] {
    enqueue_work(params_.update_cost_s);
    ++updates_applied_;
  };
  hooks.alive = [this] { return alive_; };
  ingest_->set_hooks(std::move(hooks));
  if (tracer_) ingest_->set_tracer(tracer_, trace_shard_);
}

void NodeRuntime::trace_event(uint64_t trace, core::TraceStage stage,
                              uint32_t part, double at, double dur) {
  if (!tracer_) return;
  tracer_->record(trace_shard_, trace, stage, params_.id, part, at, dur);
}

Arc NodeRuntime::stored_arc() const {
  if (range_.empty()) return Arc();
  uint64_t repl = circle_fraction(p_);
  RingId begin = range_.begin().advanced_raw(uint64_t{1} - repl);
  return Arc(begin, repl - 1 + range_.length());
}

double NodeRuntime::enqueue_work(double seconds) {
  double now = net_.clock().now();
  double start = std::max(now, busy_until_);
  busy_until_ = start + seconds;
  busy_seconds_ += seconds;
  return busy_until_;
}

void NodeRuntime::handle(net::Address from, net::ByteView payload) {
  auto type = peek_type(payload);
  if (!type) return;  // malformed: drop, as a defensive server must
  switch (*type) {
    case MsgType::kSubQuery:
      if (auto m = SubQueryMsg::decode(payload)) on_subquery(from, *m);
      break;
    case MsgType::kViewDelta:
      if (auto m = ViewDeltaMsg::decode(payload)) on_view_delta(*m);
      break;
    case MsgType::kViewAck:
      if (auto m = ViewAckMsg::decode(payload)) on_child_ack(*m);
      break;
    case MsgType::kObjectUpdate:
      if (auto m = ObjectUpdateMsg::decode(payload)) on_update(*m);
      break;
    case MsgType::kUpdate:
      if (!ingest_) break;
      if (auto m = UpdateMsg::decode(payload)) ingest_->on_update(*m);
      break;
    case MsgType::kSyncData:
      if (!ingest_) break;
      if (auto m = SyncDataMsg::decode(payload)) ingest_->on_sync_data(*m);
      break;
    default:
      break;
  }
}

NodeRuntime::ResolvedSub NodeRuntime::resolve(net::Address from,
                                              const SubQueryMsg& m) const {
  // Objects this node must match: the intersection of the sub-query's
  // responsibility window with what the node actually stores. For a normal
  // sub-query the window lies entirely in the stored arc; for a §4.4
  // failure-split half it is roughly half the window — each neighbour
  // matches only the objects it holds, which is what keeps split work (and
  // the front-end's share-based predictions) consistent.
  ResolvedSub sub;
  sub.from = from;
  sub.reply.query_id = m.query_id;
  sub.reply.part_id = m.part_id;
  sub.reply.trace = m.trace;

  uint64_t window = m.window_begin.distance_to(m.window_end);
  double window_frac;
  if (window == 0 && m.pq <= 1) {
    window_frac = 1.0;  // whole space
    sub.window.whole = true;
  } else {
    sub.window.arc = Arc(m.window_begin.advanced_raw(1), window);
    Arc stored = stored_arc();
    window_frac =
        static_cast<double>(sub.window.arc.intersection_length(stored)) /
        18446744073709551616.0;
  }
  double count = window_frac * static_cast<double>(dataset_size_);
  sub.reply.scanned = static_cast<uint64_t>(count);
  // Match count model: queries in the experiments are selective; a small
  // deterministic fraction keeps reply sizes realistic without carrying a
  // real corpus at 43-node scale (the PPS example runs the real matcher).
  sub.reply.matches = static_cast<uint64_t>(count / 10'000.0);
  sub.modeled_service_s = count / rate() + params_.subquery_overhead_s;
  // Ingesting nodes match against their own versioned view; pinning the
  // snapshot here (loop thread) is the executor-safe swap point.
  if (engine_ && ingest_) sub.snap = ingest_->snapshot();
  return sub;
}

void NodeRuntime::complete(const ResolvedSub& sub, uint64_t scanned,
                           uint64_t matches, double service_s) {
  busy_seconds_ += service_s;
  ++subqueries_served_;
  SubQueryReplyMsg reply = sub.reply;
  reply.scanned = scanned;
  reply.matches = matches;
  reply.service_s = service_s;
  TraceIdScope log_scope(reply.trace);
  trace_event(reply.trace, core::TraceStage::kNodeDone, reply.part_id,
              net_.clock().now(), service_s);
  if (service_hist_) service_hist_->record(service_s);
  net_.send(address(), sub.from, reply.encode());
}

void NodeRuntime::shed_reply(net::Address from, const SubQueryMsg& m) {
  ++subs_shed_;
  trace_event(m.trace, core::TraceStage::kNodeShed, m.part_id,
              net_.clock().now());
  SubQueryReplyMsg reply;
  reply.query_id = m.query_id;
  reply.part_id = m.part_id;
  reply.trace = m.trace;
  reply.shed = 1;
  net_.send(address(), from, reply.encode());
}

bool NodeRuntime::exec_queue_refuses(const SubQueryMsg& m) {
  size_t cap = params_.exec_queue_cap;
  if (cap == 0) return false;
  auto limit = static_cast<size_t>(static_cast<double>(cap) *
                                   core::class_bound_frac(m.klass));
  if (pending_subs_.size() < std::max<size_t>(1, limit)) return false;
  // At this class's share of the cap. A higher-priority arrival may still
  // displace the newest strictly-lower-priority queued sub (drop-tail by
  // class); net occupancy is unchanged, so the hard cap keeps holding.
  auto victim = std::find_if(
      pending_subs_.rbegin(), pending_subs_.rend(),
      [&](const auto& e) { return e.second.klass > m.klass; });
  if (victim == pending_subs_.rend()) return true;
  shed_reply(victim->first, victim->second);
  pending_subs_.erase(std::next(victim).base());
  return false;
}

void NodeRuntime::on_subquery(net::Address from, const SubQueryMsg& m) {
  TraceIdScope log_scope(m.trace);
  trace_event(m.trace, core::TraceStage::kNodeRecv, m.part_id,
              net_.clock().now());
  if (pooled()) {
    if (exec_queue_refuses(m)) {
      shed_reply(from, m);
      return;
    }
    // Batched path: queue, and drain once per loop wakeup. schedule_after(0)
    // fires in the same poll round, after the whole read batch, so every
    // sub-query that arrived together is drained together.
    pending_subs_.emplace_back(from, m);
    exec_queue_hwm_ = std::max(exec_queue_hwm_, pending_subs_.size());
    if (!drain_scheduled_) {
      drain_scheduled_ = true;
      net_.clock().schedule_after(0.0, [this] { drain_batch(); });
    }
    return;
  }

  if (params_.max_backlog_s > 0) {
    // Virtual-time queue bound: the modeled pipeline's reservation is the
    // queue. Refusing here is what keeps an open-loop overload from
    // growing busy_until_ without bound — the death-by-timeout spiral the
    // unbounded node fell into.
    double backlog =
        std::max(0.0, busy_until_ - net_.clock().now());
    if (backlog > params_.max_backlog_s * core::class_bound_frac(m.klass)) {
      shed_reply(from, m);
      return;
    }
    backlog_hwm_s_ = std::max(backlog_hwm_s_, backlog);
  }

  if (engine_) {
    // Inline real matching (workers = 0): the scan runs on the loop
    // thread — results identical to the pooled path, only the
    // concurrency differs.
    ResolvedSub sub = resolve(from, m);
    if (!modeled_timing_) {
      trace_event(m.trace, core::TraceStage::kNodeExec, m.part_id,
                  net_.clock().now());
    }
    MatchEngine::Result r = sub.snap ? engine_->execute(sub.window, *sub.snap)
                                     : engine_->execute(sub.window);
    if (modeled_timing_) {
      // Virtual-time deployments: real counts, analytic timing — the
      // reply departs at the modeled pipeline's finish, so traces stay
      // independent of the host's actual scan speed.
      reply_modeled(sub, r.scanned, r.matches);
      return;
    }
    complete(sub, r.scanned, r.matches,
             r.cpu_s + params_.subquery_overhead_s);
    return;
  }

  // Original virtual-time model: service time accrues on the single
  // modeled pipeline and the reply is scheduled at its finish time. This
  // branch is byte-identical with the pre-engine node, which keeps the
  // EmulatedCluster's virtual-time traces stable.
  ResolvedSub sub = resolve(from, m);
  reply_modeled(sub, sub.reply.scanned, sub.reply.matches);
}

void NodeRuntime::reply_modeled(const ResolvedSub& sub, uint64_t scanned,
                                uint64_t matches) {
  double service = sub.modeled_service_s;
  double finish = enqueue_work(service);
  ++subqueries_served_;
  // Span endpoints at the MODELED times: the sub-query "executes" from
  // finish-service to finish on the virtual pipeline.
  trace_event(sub.reply.trace, core::TraceStage::kNodeExec,
              sub.reply.part_id, finish - service);
  trace_event(sub.reply.trace, core::TraceStage::kNodeDone,
              sub.reply.part_id, finish, service);
  if (service_hist_) service_hist_->record(service);

  SubQueryReplyMsg reply = sub.reply;
  reply.scanned = scanned;
  reply.matches = matches;
  reply.service_s = service;
  net::Address dest = sub.from;
  net_.clock().schedule_at(finish, [this, dest, reply] {
    net_.send(address(), dest, reply.encode());
  });
}

void NodeRuntime::drain_batch() {
  drain_scheduled_ = false;
  if (!alive_ || pending_subs_.empty()) return;

  size_t n = std::min(pending_subs_.size(), exec_.batch_max);
  std::vector<ResolvedSub> batch;
  batch.reserve(n);
  double drain_at = net_.clock().now();
  for (size_t i = 0; i < n; ++i) {
    batch.push_back(resolve(pending_subs_[i].first, pending_subs_[i].second));
    // Queue exit: the sub-query leaves the executor queue for a lane now.
    trace_event(batch.back().reply.trace, core::TraceStage::kNodeExec,
                batch.back().reply.part_id, drain_at);
  }
  pending_subs_.erase(pending_subs_.begin(),
                      pending_subs_.begin() + static_cast<ptrdiff_t>(n));
  if (!pending_subs_.empty()) {
    drain_scheduled_ = true;
    net_.clock().schedule_after(0.0, [this] { drain_batch(); });
  }
  ++batches_drained_;
  batched_subqueries_ += n;

  if (engine_) {
    // Real matching: split the batch over at most pool-size chunks; each
    // chunk shares one evaluation (the amortized store/ordering work).
    size_t lanes = std::min(exec_.pool->size(), batch.size());
    std::vector<std::vector<ResolvedSub>> chunks(lanes);
    for (size_t i = 0; i < batch.size(); ++i) {
      chunks[i % lanes].push_back(std::move(batch[i]));
    }
    for (auto& chunk : chunks) {
      std::shared_ptr<const MatchEngine> engine = engine_;
      double overhead = params_.subquery_overhead_s;
      auto post = exec_.post;
      exec_.pool->submit([this, engine, overhead, post,
                          chunk = std::move(chunk)]() mutable {
        std::vector<MatchEngine::Window> windows;
        std::vector<std::shared_ptr<const pps::StoreSnapshot>> snaps;
        windows.reserve(chunk.size());
        snaps.reserve(chunk.size());
        for (const auto& s : chunk) {
          windows.push_back(s.window);
          snaps.push_back(s.snap);  // null = boot corpus
        }
        auto results = engine->execute_batch(windows, snaps);
        post([this, chunk = std::move(chunk),
              results = std::move(results), overhead] {
          if (!alive_) return;  // crashed while the scan ran
          for (size_t i = 0; i < chunk.size(); ++i) {
            complete(chunk[i], results[i].scanned, results[i].matches,
                     results[i].cpu_s + overhead);
          }
        });
      });
    }
    return;
  }

  // Modeled matching on real lanes: each worker lane *occupies itself* for
  // the modeled service time (this is Definition 8's constant-service-time
  // pipeline, W lanes wide), then posts the completion. Reply content is
  // identical to the inline path; only queueing changes.
  for (auto& sub : batch) {
    double service = sub.modeled_service_s;
    auto post = exec_.post;
    exec_.pool->submit([this, post, sub = std::move(sub), service] {
      std::this_thread::sleep_for(std::chrono::duration<double>(service));
      post([this, sub, service] {
        if (!alive_) return;
        complete(sub, sub.reply.scanned, sub.reply.matches, service);
      });
    });
  }
}

void NodeRuntime::on_view_delta(const ViewDeltaMsg& m) {
  // Relay duty is per-message: targets set it (and this node forwards the
  // wave before touching its own state — children are not gated on our
  // apply), no targets clear it.
  if (!m.relay_targets.empty()) {
    take_relay_duty(m);
  } else {
    children_.clear();
  }
  ack_to_ = m.ack_to;
  switch (sub_.apply(m.delta)) {
    case core::ViewSubscription::Apply::kApplied:
      reconcile_view();
      break;
    case core::ViewSubscription::Apply::kStale:
      break;
    case core::ViewSubscription::Apply::kGap: {
      // Our basis is missing; pull the compacted suffix. The registration
      // may have been lost along with whatever we missed — re-send it
      // once the pulled view applies.
      interest_sent_ = false;
      ViewPullMsg pull;
      pull.subscriber = address();
      pull.have_epoch = sub_.epoch();
      net_.send(address(), kMembershipAddr, pull.encode());
      break;  // watermark unchanged; children may still advance it
    }
  }
  maybe_send_ack();
}

void NodeRuntime::take_relay_duty(const ViewDeltaMsg& m) {
  relay_fanout_ = m.relay_fanout == 0 ? 1 : m.relay_fanout;
  auto branches = relay::split(m.relay_targets, relay_fanout_);
  // Keep pacing state for children that persist across waves (the tree is
  // deterministic, so they usually all do).
  std::vector<RelayChild> next;
  next.reserve(branches.size());
  for (auto& b : branches) {
    RelayChild c;
    c.addr = b.head;
    c.targets = std::move(b.rest);
    for (RelayChild& old : children_) {
      if (old.addr == c.addr) {
        c.win = old.win;
        c.queued = std::move(old.queued);
        break;
      }
    }
    next.push_back(std::move(c));
  }
  children_ = std::move(next);
  for (RelayChild& c : children_) forward_to_child(c, m.delta);
}

void NodeRuntime::forward_to_child(RelayChild& c, const core::ViewDelta& d) {
  if (!c.win.can_send()) {
    // Bounded buffer of one: a newer wave supersedes a queued older one —
    // the signal this child is not draining, halve its window.
    if (c.queued) {
      ++relay_supersessions_;
      c.win.on_supersede();
    }
    c.queued = d;
    return;
  }
  ViewDeltaMsg fwd;
  fwd.delta = d;
  fwd.ack_to = address();  // children ack here for aggregation
  fwd.relay_fanout = c.targets.empty() ? 0 : relay_fanout_;
  fwd.relay_targets = c.targets;
  net_.send(address(), c.addr, fwd.encode());
  c.win.on_sent(d.epoch);
  ++deltas_relayed_;
}

void NodeRuntime::on_child_ack(const ViewAckMsg& m) {
  for (RelayChild& c : children_) {
    if (c.addr != m.subscriber) continue;
    c.win.on_ack(m.epoch, m.agg_count);
    if (c.queued && c.win.can_send()) {
      core::ViewDelta d = std::move(*c.queued);
      c.queued.reset();
      forward_to_child(c, d);
    }
    break;
  }
  maybe_send_ack();
}

void NodeRuntime::maybe_send_ack() {
  // Aggregated watermark: the oldest epoch anyone in this subtree has
  // applied. Children that never acked hold it at 0 (nothing to report
  // yet).
  uint64_t wm = sub_.epoch();
  uint32_t agg = 1;
  for (const RelayChild& c : children_) {
    wm = std::min(wm, c.win.acked);
    agg += c.win.agg;
  }
  if (wm == 0 || wm < ack_reported_) return;
  ack_reported_ = wm;
  if (agg > 1) ++acks_aggregated_;
  ViewAckMsg ack;
  ack.subscriber = address();
  ack.epoch = wm;
  ack.agg_count = agg;
  net_.send(address(), ack_to_, ack.encode());
}

void NodeRuntime::refresh_interest() {
  if (range_.empty()) return;
  const core::ClusterView& v = sub_.view();
  // The region this node's control logic depends on: its range plus the
  // replication arc reaching back 1/p — membership changes there move its
  // range or its stored arc. Use the smallest p in play so an in-flight
  // decrease is already covered.
  uint32_t p = std::min({p_, v.target_p, v.safe_p});
  bool want_full = p <= 2;  // arcs cover most of the ring anyway
  uint64_t m = p > 0 ? circle_fraction(p) : 0;
  Arc needed;
  Arc reg;
  if (!want_full) {
    needed = Arc(range_.begin().advanced_raw(uint64_t{1} - m),
                 m - 1 + range_.length());
    if (needed.length() < range_.length()) want_full = true;  // wrapped
  }
  if (!want_full) {
    // Register twice the needed slack: hysteresis, so ordinary churn
    // (balance moves, neighbour joins) doesn't re-register every epoch.
    uint64_t slack = 2 * m;
    uint64_t len = slack - 1 + range_.length();
    if (len < range_.length()) {
      want_full = true;
    } else {
      reg = Arc(range_.begin().advanced_raw(uint64_t{1} - slack), len);
    }
  }
  if (interest_sent_) {
    bool covered =
        want_full ? interest_registered_.empty()
                  : !interest_registered_.empty() &&
                        interest_registered_.contains(needed.begin()) &&
                        interest_registered_.intersection_length(needed) ==
                            needed.length();
    if (covered) return;
  } else if (want_full) {
    return;  // full interest is the default; nothing to say
  }
  interest_registered_ = want_full ? Arc() : reg;
  interest_sent_ = true;
  ++interests_sent_;
  ViewInterestMsg msg;
  msg.subscriber = address();
  msg.epoch = sub_.epoch();
  if (!want_full) msg.arcs.push_back(interest_registered_);
  net_.send(address(), kMembershipAddr, msg.encode());
}

void NodeRuntime::reconcile_view() {
  const core::ClusterView& v = sub_.view();
  core::Ring ring = v.to_ring();
  if (!ring.contains(params_.id)) {
    range_ = Arc();
    has_range_.store(false, std::memory_order_release);
    p_ = v.storage_p;
    return;
  }
  range_ = ring.range_of(params_.id);
  has_range_.store(!range_.empty(), std::memory_order_release);
  // Store at the published level. During an in-progress decrease a node
  // that already finished its own fetch holds the larger arcs and keeps
  // claiming them (p_ = target), regardless of the view's lagging safe
  // level.
  p_ = v.storage_p;
  if (v.in_progress() && fetch_done_for_p_ == v.target_p) {
    p_ = v.target_p;
  }
  // Storing above a previously fetched level drops that level's surplus
  // arcs: the downloaded data is gone, and a future decrease back to the
  // same p must re-download rather than instantly re-confirm off the
  // stale credit.
  if (fetch_done_for_p_ != 0 && p_ > fetch_done_for_p_) {
    fetch_done_for_p_ = 0;
  }
  if (v.in_progress() && v.pending_contains(params_.id)) {
    if (fetch_done_for_p_ == v.target_p) {
      // Data already on disk (e.g. the confirmation was lost, or we
      // crashed after the download finished): just re-report.
      send_fetch_complete(v.target_p);
    } else if (fetch_running_for_p_ != v.target_p) {
      begin_fetch(ring, v.safe_p, v.target_p);
    }
  } else if (!v.in_progress()) {
    // Any straggling download is superseded; its timer must not complete
    // a later attempt.
    if (fetch_running_for_p_ != 0) ++fetch_gen_;
    fetch_running_for_p_ = 0;
  }
  refresh_interest();
}

void NodeRuntime::begin_fetch(const core::Ring& ring, uint32_t p_old,
                              uint32_t p_new) {
  // Download the new objects from the backend filestore at fetch
  // bandwidth; confirm when done. Downloads do not consume matching
  // capacity (the paper's background replication).
  Arc fetch =
      core::ReplicationController::fetch_arc(ring, params_.id, p_old, p_new);
  double frac =
      static_cast<double>(fetch.length()) / 18446744073709551616.0;
  double bytes = frac * static_cast<double>(dataset_size_) *
                 params_.bytes_per_object;
  double secs = bytes / params_.fetch_bandwidth;
  fetch_running_for_p_ = p_new;
  uint64_t gen = ++fetch_gen_;
  net_.clock().schedule_after(secs, [this, p_new, gen] {
    // The generation guard rejects orphaned timers from attempts that a
    // crash or supersession abandoned — even when a NEW attempt for the
    // same p is in flight (its own, later timer will complete it).
    if (!alive_ || gen != fetch_gen_) return;
    fetch_running_for_p_ = 0;
    fetch_done_for_p_ = p_new;
    p_ = p_new;
    send_fetch_complete(p_new);
  });
}

void NodeRuntime::send_fetch_complete(uint32_t new_p) {
  FetchCompleteMsg done;
  done.node = params_.id;
  done.new_p = new_p;
  net_.send(address(), kMembershipAddr, done.encode());
}

std::vector<IngestReplicaView> collect_ingest_replicas(
    std::span<const std::unique_ptr<NodeRuntime>> nodes) {
  std::vector<IngestReplicaView> out;
  for (const auto& n : nodes) {
    if (!n->alive() || !n->ingest() || n->range().empty()) continue;
    out.push_back({n->id(), n->ingest(), n->stored_arc()});
  }
  return out;
}

void NodeRuntime::on_update(const ObjectUpdateMsg& m) {
  (void)m;
  enqueue_work(params_.update_cost_s);
  ++updates_applied_;
}

}  // namespace roar::cluster
