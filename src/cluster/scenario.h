// Declarative chaos scenarios against the emulated ROAR cluster, with
// the paper's guarantees checked after every event.
//
// A Scenario scripts timed events — crash/revive a node or a front-end,
// graceful leave, membership join, bidirectional partition and heal,
// p→p′ reconfiguration, query bursts, balancing rounds — onto the
// cluster's virtual-time loop. Partition events require the cluster to be
// built with ClusterConfig::enable_faults (the net::FaultTransport
// layer).
//
// After every applied event (and at start/end) the InvariantChecker
// re-derives the §4.2–§4.5 guarantees from the authoritative state:
//
//  1. Coverage: planning at pq >= safe_p against the membership ring puts
//     every sampled object in exactly one responsibility window, and the
//     window's assigned node stores the object's replication arc.
//  2. Failure splits (§4.4) preserve responsibility windows: the plan's
//     distinct windows are exactly the pq equal arcs of the query, and a
//     split pair jointly stores its window.
//  3. Harvest bound (§4.4): windows are abandoned only when their owning
//     node is dead, so planned harvest >= 1 − (dead-owner windows)/pq.
//  4. Reconfiguration safety (§4.5): safe_p lags target_p only while
//     confirmations are outstanding, and every live node serves at the
//     old or the new p, never anything else.
//  5. Message accounting: counters are monotone and conserved through the
//     fault layer (sent − injected drops + duplicates − in flight ==
//     inner transport's sends).
//  6. View-epoch safety: every front-end's view epoch is monotone and
//     never ahead of the control plane's; no ready front-end ever plans
//     at a p smaller than what some live node stores at ("no query is
//     ever partitioned with an unsafe p" — the drop gate's guarantee);
//     storage_p lags safe_p only while the drop gate is pending. At the
//     END of a run every live, reachable front-end has converged to the
//     control plane's epoch.
//  7. Ingest safety (clusters built with enable_ingest): at every check,
//     no replica's applied LSN exceeds the router's issued LSN, no acked
//     watermark exceeds its replica's applied LSN, and applied LSNs are
//     monotone per (shard, node). At the END of a run (after the drain
//     window) the full convergence invariant holds: every live replica of
//     every shard sits at the router's issued LSN and returns match
//     results identical to the router's reference state.
//
// Everything is seeded; a scenario's event trace and the cluster's
// message counters are bit-for-bit reproducible from (config, seed) —
// the property the chaos soak test replays to verify.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "cluster/emulated_cluster.h"

namespace roar::cluster {

struct InvariantViolation {
  double at = 0.0;      // virtual time of the check
  std::string context;  // the event after which the check ran
  std::string detail;
};

class InvariantChecker {
 public:
  InvariantChecker(EmulatedCluster& cluster, uint64_t seed);

  // Runs every check; returns the number of new violations recorded.
  size_t check(const std::string& context);
  // Quiescent-state ingest convergence (identical applied LSNs AND
  // identical per-shard match results); meaningful only once the workload
  // drained. No-op without ingestion. Returns new violations.
  size_t check_ingest_converged(const std::string& context);
  // Quiescent-state view convergence: every live front-end sits on the
  // control plane's epoch. Returns new violations.
  size_t check_view_converged(const std::string& context);
  const std::vector<InvariantViolation>& violations() const {
    return violations_;
  }
  // Objects sampled per planned probe (default 48).
  void set_object_samples(uint32_t n) { object_samples_ = n; }

 private:
  void fail(const std::string& context, std::string detail);
  void check_plan(const std::string& context, uint32_t pq);
  void check_reconfig(const std::string& context);
  void check_view(const std::string& context);
  void check_accounting(const std::string& context);
  void check_ingest_safety(const std::string& context);
  // Overload-control audit: every bounded queue's high-water mark must
  // respect its cap (shedding keeps queues bounded, it never merely
  // reorders the overflow), and per-class admission accounting must
  // conserve queries (offered == admitted + shed).
  void check_queues(const std::string& context);

  EmulatedCluster& cluster_;
  Rng rng_;
  uint32_t object_samples_ = 48;
  std::vector<InvariantViolation> violations_;
  uint64_t last_messages_sent_ = 0;
  uint64_t last_control_epoch_ = 0;
  std::map<uint32_t, uint64_t> last_frontend_epoch_;
  // Per-(shard, node) applied-LSN high-water marks for monotonicity.
  std::map<std::pair<uint32_t, NodeId>, uint64_t> last_applied_;
};

struct ScenarioResult {
  std::vector<std::string> trace;  // "t=12.500 crash node 3" per event
  uint32_t events_applied = 0;
  uint32_t queries_submitted = 0;
  uint32_t queries_completed = 0;
  uint32_t queries_partial = 0;  // answered with harvest < 1
  double min_harvest = 1.0;      // lowest harvest over all burst queries
  uint32_t ingest_ops = 0;       // index mutations the scenario issued
  bool ingest_converged = true;  // replicas caught up by the end of drain
  uint64_t messages_sent = 0;
  uint64_t messages_dropped = 0;
  std::vector<InvariantViolation> violations;
  // Flight-recorder dumps captured during this run (invariant trips and
  // query timeouts); also written to $ROAR_FLIGHT_DUMP_DIR when set, so
  // CI can upload them as artifacts on failure.
  std::vector<core::Tracer::FlightDump> flight_dumps;

  bool ok() const { return violations.empty(); }
};

class Scenario {
 public:
  // `seed` drives the checker's sampling and the burst arrival processes;
  // the cluster's own randomness is seeded by its config.
  Scenario(EmulatedCluster& cluster, uint64_t seed);

  // All times are offsets (seconds of virtual time) from run()'s start.
  Scenario& crash(double at, NodeId id);
  Scenario& revive(double at, NodeId id);
  // Front-end lifecycle (§4.8 scale-out): its pending queries fail at the
  // crash; it refuses new ones until a revival re-syncs its view.
  Scenario& crash_frontend(double at, uint32_t index);
  Scenario& revive_frontend(double at, uint32_t index);
  Scenario& join(double at, double speed);
  Scenario& leave(double at, NodeId id);
  Scenario& remove_dead(double at);
  Scenario& balance(double at);
  // Orders a p→p_new reconfiguration (skipped, deterministically, if a
  // previous change is still awaiting confirmations).
  Scenario& reconfigure(double at, uint32_t p_new);
  // Cuts the given nodes off from everything else (front-end, membership,
  // update server and the remaining nodes) for `duration`, then heals and
  // republishes ranges. Requires ClusterConfig::enable_faults.
  Scenario& partition(double at, double duration, std::vector<NodeId> island);
  // Poisson query burst: `count` queries at `rate_per_s` starting at `at`.
  Scenario& burst(double at, double rate_per_s, uint32_t count);
  // Poisson index-mutation burst: `count` ops at `rate_per_s` starting at
  // `at` — adds of synthetic documents mixed with deletes of earlier adds
  // (`delete_frac`). Requires ClusterConfig::enable_ingest.
  Scenario& ingest(double at, double rate_per_s, uint32_t count,
                   double delete_frac = 0.2);

  // Schedules everything, runs the loop for `duration` virtual seconds
  // (plus a drain window for still-outstanding queries), and returns the
  // trace, workload outcome and invariant verdict. Intended to be called
  // once per Scenario: the cluster keeps whatever state the run left it
  // in, so build a fresh Scenario (and usually a fresh cluster) per run.
  ScenarioResult run(double duration);

  InvariantChecker& checker() { return checker_; }
  // How long after each event the audit runs (control-plane pushes need a
  // network latency to land; default 50 ms of virtual time).
  void set_check_settle(double s) { check_settle_s_ = s; }
  // Cap on the post-duration drain for still-outstanding queries.
  void set_drain(double s) { drain_s_ = s; }

 private:
  struct Step {
    double at;
    std::string what;
    std::function<void()> apply;
  };
  Scenario& add(double at, std::string what, std::function<void()> apply);

  EmulatedCluster& cluster_;
  InvariantChecker checker_;
  Rng rng_;
  double check_settle_s_ = 0.05;
  double drain_s_ = 120.0;
  std::vector<Step> steps_;
  ScenarioResult result_;
};

}  // namespace roar::cluster
