#include "cluster/workload.h"

#include <algorithm>
#include <cmath>

namespace roar::cluster {

namespace {

// Salts under the kWorkloadEngine stream: 0 is the arrival generator
// itself (taken via the enum so single-engine runs keep the canonical
// sequence), 1 the storm process, 2 the template-store ids.
constexpr uint64_t kStormSalt = 1;
constexpr uint64_t kTemplateSalt = 2;

}  // namespace

struct WorkloadEngine::Gen {
  Rng rng;
  double t = 0.0;  // generator-relative time of the last arrival
  std::unique_ptr<pps::UserMetadataCache> cache;

  explicit Gen(uint64_t seed) : rng(seed) {}
};

WorkloadEngine::WorkloadEngine(net::Clock& clock, WorkloadConfig config,
                               SubmitFn submit, core::SloContract contract)
    : clock_(clock),
      config_(std::move(config)),
      submit_(std::move(submit)),
      contract_(contract),
      user_zipf_(std::max<uint64_t>(1, config_.users), config_.user_zipf_s),
      term_zipf_(std::max<uint64_t>(1, config_.query_terms),
                 config_.term_zipf_s),
      alive_(std::make_shared<bool>(true)) {
  // Thinning envelope: the rate can never exceed base × the diurnal peak
  // × every crowd multiplier compounded (crowds may overlap).
  double diurnal_peak = 1.0;
  for (double m : config_.diurnal) diurnal_peak = std::max(diurnal_peak, m);
  double crowd_peak = 1.0;
  for (const auto& c : config_.flash_crowds) {
    crowd_peak *= std::max(1.0, c.multiplier);
  }
  peak_rate_ = config_.base_rate_per_s * diurnal_peak * crowd_peak;

  if (config_.cache_capacity_bytes > 0) {
    // One template store stands in for every user's on-disk metadata: the
    // cache charges per-user residency and miss I/O from its byte size,
    // which is all the §5.6.1 model consumes.
    template_store_ = std::make_unique<pps::MetadataStore>();
    std::vector<pps::EncryptedFileMetadata> items;
    Rng ids(subseed(subseed(config_.seed, SeedStream::kWorkloadEngine),
                    kTemplateSalt));
    // 127 filter words ≈ 1 KB per metadata item.
    constexpr size_t kWords = 127;
    pps::EncryptedFileMetadata proto;
    proto.enc.bits.assign(kWords, 0);
    size_t item_bytes = proto.byte_size();
    size_t n = std::max<uint64_t>(
        1, config_.user_metadata_bytes / std::max<size_t>(1, item_bytes));
    items.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      pps::EncryptedFileMetadata m = proto;
      m.id = RingId(ids.next_u64());
      items.push_back(std::move(m));
    }
    template_store_->load(std::move(items));
  }

  storm_rng_ = std::make_unique<Rng>(
      subseed(subseed(config_.seed, SeedStream::kWorkloadEngine), kStormSalt));
}

WorkloadEngine::~WorkloadEngine() { *alive_ = false; }

double WorkloadEngine::diurnal_multiplier(double t) const {
  if (config_.diurnal.empty()) return 1.0;
  size_t n = config_.diurnal.size();
  if (n == 1) return config_.diurnal.front();
  double period = config_.diurnal_period_s > 0 ? config_.diurnal_period_s
                                               : 86'400.0;
  double phase = std::fmod(t, period) / period;  // [0, 1)
  if (phase < 0) phase += 1.0;
  // Piecewise linear through n points spread uniformly, wrapping back to
  // the first point at the period boundary.
  double x = phase * static_cast<double>(n);
  size_t i = static_cast<size_t>(x) % n;
  double frac = x - std::floor(x);
  double a = config_.diurnal[i];
  double b = config_.diurnal[(i + 1) % n];
  return a + (b - a) * frac;
}

double WorkloadEngine::rate_at(double t) const {
  double r = config_.base_rate_per_s * diurnal_multiplier(t);
  for (const auto& c : config_.flash_crowds) {
    if (t >= c.at && t < c.at + c.duration_s) r *= c.multiplier;
  }
  return r;
}

std::unique_ptr<WorkloadEngine::Gen> WorkloadEngine::make_gen() const {
  auto g = std::make_unique<Gen>(
      subseed(config_.seed, SeedStream::kWorkloadEngine));
  if (config_.cache_capacity_bytes > 0) {
    g->cache = std::make_unique<pps::UserMetadataCache>(
        config_.cache_capacity_bytes);
  }
  return g;
}

bool WorkloadEngine::next_arrival(Gen& g, Arrival* out) const {
  if (peak_rate_ <= 0.0) return false;
  // Lewis-Shedler: candidate gaps at the peak rate, accepted with
  // probability rate(t)/peak. Rejected candidates still consume rng draws
  // — that is what makes the sequence identical across replays.
  while (true) {
    g.t += g.rng.next_exponential(peak_rate_);
    if (g.t >= config_.duration_s) return false;
    if (g.rng.next_double() * peak_rate_ <= rate_at(g.t)) break;
  }
  out->at = g.t;
  out->user = user_zipf_.next(g.rng) - 1;  // ranks are 1-based
  out->term_rank = term_zipf_.next(g.rng);
  double u = g.rng.next_double();
  if (u < config_.interactive_frac) {
    out->klass = core::QueryClass::kInteractive;
  } else if (u < config_.interactive_frac + config_.batch_frac) {
    out->klass = core::QueryClass::kBatch;
  } else {
    out->klass = core::QueryClass::kScavenger;
  }
  out->cache_hit = false;
  out->io_cost_s = 0.0;
  if (g.cache) {
    if (!g.cache->has_user(out->user)) {
      g.cache->register_user(out->user, template_store_.get());
    }
    auto acc = g.cache->access(out->user, config_.io, config_.miss_mode);
    out->cache_hit = acc.mode == pps::SourceMode::kMemory;
    out->io_cost_s = acc.io_seconds;
  }
  return true;
}

void WorkloadEngine::start() {
  live_ = make_gen();
  start_t_ = clock_.now();
  if (config_.record_arrivals) recorded_.clear();
  schedule_next();
  for (size_t i = 0; i < config_.ingest_storms.size(); ++i) {
    const IngestStorm& s = config_.ingest_storms[i];
    if (s.rate_per_s <= 0 || s.duration_s <= 0) continue;
    schedule_storm(i, start_t_ + s.at, start_t_ + s.at + s.duration_s);
  }
}

void WorkloadEngine::schedule_next() {
  Arrival a;
  if (!next_arrival(*live_, &a)) {
    finished_generating_ = true;
    return;
  }
  auto alive = alive_;
  clock_.schedule_at(start_t_ + a.at, [this, alive, a] {
    if (!*alive) return;
    submit_arrival(a);
    schedule_next();
  });
}

void WorkloadEngine::submit_arrival(const Arrival& a) {
  ++totals_[core::class_index(a.klass)].offered;
  if (config_.record_arrivals) recorded_.push_back(a);
  QueryRequest req;
  req.klass = a.klass;
  req.user = a.user;
  req.extra_cost_s = a.io_cost_s;
  ++outstanding_;
  auto alive = alive_;
  core::QueryClass klass = a.klass;
  submit_(req, [this, alive, klass](const QueryOutcome& o) {
    if (!*alive) return;
    --outstanding_;
    ClassTotals& t = totals_[core::class_index(klass)];
    if (o.shed) {
      ++t.shed;
      return;
    }
    if (o.id == 0 || (!o.complete && o.harvest <= 0.0)) {
      ++t.failed;
      return;
    }
    ++t.completed;
    t.latency.add(o.breakdown.total_s);
    if (o.breakdown.total_s <= contract_.of(klass).target_p99_s) ++t.in_slo;
    if (o.harvest < 1.0) ++t.degraded;
  });
}

void WorkloadEngine::schedule_storm(size_t i, double at, double until) {
  auto alive = alive_;
  clock_.schedule_at(at, [this, alive, i, until] {
    if (!*alive) return;
    if (ingest_op_) {
      bool is_delete =
          storm_rng_->next_double() < config_.storm_delete_frac;
      ingest_op_(is_delete);
      ++ingest_ops_;
    }
    double next = clock_.now() + storm_rng_->next_exponential(
                                     config_.ingest_storms[i].rate_per_s);
    if (next < until) schedule_storm(i, next, until);
  });
}

std::vector<Arrival> WorkloadEngine::pregenerate(size_t max_n) const {
  std::vector<Arrival> out;
  auto g = make_gen();
  Arrival a;
  while (out.size() < max_n && next_arrival(*g, &a)) out.push_back(a);
  return out;
}

uint64_t WorkloadEngine::total_offered() const {
  uint64_t n = 0;
  for (const auto& t : totals_) n += t.offered;
  return n;
}

uint64_t WorkloadEngine::total_completed() const {
  uint64_t n = 0;
  for (const auto& t : totals_) n += t.completed;
  return n;
}

double WorkloadEngine::shed_frac(core::QueryClass c) const {
  const ClassTotals& t = totals_[core::class_index(c)];
  return t.offered ? static_cast<double>(t.shed) /
                         static_cast<double>(t.offered)
                   : 0.0;
}

double WorkloadEngine::violation_frac(core::QueryClass c) const {
  const ClassTotals& t = totals_[core::class_index(c)];
  if (t.offered == 0) return 0.0;
  // Controlled shedding within the contract's max_shed allowance is not a
  // violation — that is the contract's whole point. Only the excess
  // counts, alongside served-but-late and failed queries.
  auto allowed_shed = static_cast<uint64_t>(
      contract_.of(c).max_shed * static_cast<double>(t.offered));
  uint64_t violations = (t.completed - t.in_slo) + t.failed +
                        (t.shed > allowed_shed ? t.shed - allowed_shed : 0);
  return static_cast<double>(violations) / static_cast<double>(t.offered);
}

pps::CacheStats WorkloadEngine::cache_stats() const {
  if (live_ && live_->cache) return live_->cache->stats();
  return {};
}

}  // namespace roar::cluster
