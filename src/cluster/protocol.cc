#include "cluster/protocol.h"

#include "common/logging.h"
#include "net/framing.h"

namespace roar::cluster {
namespace {

net::Writer with_type(MsgType t) {
  net::Writer w;
  w.u8(static_cast<uint8_t>(t));
  return w;
}

std::optional<net::Reader> reader_for(net::ByteView b, MsgType expect) {
  if (b.empty() || b[0] != static_cast<uint8_t>(expect)) return std::nullopt;
  net::Reader r(b.data() + 1, b.size() - 1);
  return r;
}

}  // namespace

std::optional<MsgType> peek_type(net::ByteView b) {
  if (b.empty()) return std::nullopt;
  uint8_t t = b[0];
  // 3 and 4 are the retired kRangePush/kFetchOrder slots.
  if (t < 1 || t > 15 || t == 3 || t == 4) return std::nullopt;
  return static_cast<MsgType>(t);
}

net::Bytes SubQueryMsg::encode() const {
  auto w = with_type(MsgType::kSubQuery);
  w.u64(query_id);
  w.u32(part_id);
  w.u64(trace);
  w.ring_id(point);
  w.ring_id(window_begin);
  w.ring_id(window_end);
  w.u32(pq);
  w.f64(share);
  w.u8(klass);
  return w.take();
}

std::optional<SubQueryMsg> SubQueryMsg::decode(net::ByteView b) {
  auto r = reader_for(b, MsgType::kSubQuery);
  if (!r) return std::nullopt;
  SubQueryMsg m;
  m.query_id = r->u64();
  m.part_id = r->u32();
  m.trace = r->u64();
  m.point = r->ring_id();
  m.window_begin = r->ring_id();
  m.window_end = r->ring_id();
  m.pq = r->u32();
  m.share = r->f64();
  m.klass = r->u8();
  if (!r->ok()) return std::nullopt;
  return m;
}

net::Bytes SubQueryReplyMsg::encode() const {
  auto w = with_type(MsgType::kSubQueryReply);
  w.u64(query_id);
  w.u32(part_id);
  w.u64(trace);
  w.u64(scanned);
  w.u64(matches);
  w.f64(service_s);
  w.u8(shed);
  return w.take();
}

std::optional<SubQueryReplyMsg> SubQueryReplyMsg::decode(net::ByteView b) {
  auto r = reader_for(b, MsgType::kSubQueryReply);
  if (!r) return std::nullopt;
  SubQueryReplyMsg m;
  m.query_id = r->u64();
  m.part_id = r->u32();
  m.trace = r->u64();
  m.scanned = r->u64();
  m.matches = r->u64();
  m.service_s = r->f64();
  m.shed = r->u8();
  if (!r->ok()) return std::nullopt;
  return m;
}

net::Bytes ViewDeltaMsg::encode() const {
  auto w = with_type(MsgType::kViewDelta);
  w.u64(delta.epoch);
  w.u64(delta.prev_epoch);
  w.u8(delta.full ? 1 : 0);
  w.u32(delta.target_p);
  w.u32(delta.safe_p);
  w.u32(delta.storage_p);
  w.u32(static_cast<uint32_t>(delta.upserts.size()));
  for (const auto& m : delta.upserts) {
    w.u32(m.id);
    w.ring_id(m.position);
    w.f64(m.speed);
    w.u8(m.alive ? 1 : 0);
  }
  w.u32(static_cast<uint32_t>(delta.removes.size()));
  for (NodeId id : delta.removes) w.u32(id);
  w.u32(static_cast<uint32_t>(delta.pending.size()));
  for (NodeId id : delta.pending) w.u32(id);
  w.u32(ack_to);
  w.u8(relay_fanout);
  w.u32(static_cast<uint32_t>(relay_targets.size()));
  for (net::Address a : relay_targets) w.u32(a);
  return w.take();
}

std::optional<ViewDeltaMsg> ViewDeltaMsg::decode(net::ByteView b) {
  auto r = reader_for(b, MsgType::kViewDelta);
  if (!r) return std::nullopt;
  ViewDeltaMsg m;
  m.delta.epoch = r->u64();
  m.delta.prev_epoch = r->u64();
  m.delta.full = r->u8() != 0;
  m.delta.target_p = r->u32();
  m.delta.safe_p = r->u32();
  m.delta.storage_p = r->u32();
  // Hostile-count guards: each member costs 21 bytes, each id 4 — a count
  // the remaining bytes cannot carry is rejected before any allocation.
  uint32_t n = r->u32();
  if (!r->ok() || static_cast<uint64_t>(n) * 21 > r->remaining()) {
    return std::nullopt;
  }
  m.delta.upserts.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    core::ViewMember vm;
    vm.id = r->u32();
    vm.position = r->ring_id();
    vm.speed = r->f64();
    vm.alive = r->u8() != 0;
    m.delta.upserts.push_back(vm);
  }
  n = r->u32();
  if (!r->ok() || static_cast<uint64_t>(n) * 4 > r->remaining()) {
    return std::nullopt;
  }
  m.delta.removes.reserve(n);
  for (uint32_t i = 0; i < n; ++i) m.delta.removes.push_back(r->u32());
  n = r->u32();
  if (!r->ok() || static_cast<uint64_t>(n) * 4 > r->remaining()) {
    return std::nullopt;
  }
  m.delta.pending.reserve(n);
  for (uint32_t i = 0; i < n; ++i) m.delta.pending.push_back(r->u32());
  m.ack_to = r->u32();
  m.relay_fanout = r->u8();
  n = r->u32();
  if (!r->ok() || static_cast<uint64_t>(n) * 4 > r->remaining()) {
    return std::nullopt;
  }
  m.relay_targets.reserve(n);
  for (uint32_t i = 0; i < n; ++i) m.relay_targets.push_back(r->u32());
  if (!r->ok()) return std::nullopt;
  // A full snapshot replaces the member set wholesale; carrying removals
  // too would be ambiguous, so such a message is malformed by definition.
  if (m.delta.full && !m.delta.removes.empty()) return std::nullopt;
  // Relay targets without a fanout give the recipient no way to split the
  // forwarding work; an incremental delta whose basis is at or past its
  // own epoch could never have been produced by the delta log.
  if (!m.relay_targets.empty() && m.relay_fanout == 0) return std::nullopt;
  if (!m.delta.full && m.delta.prev_epoch >= m.delta.epoch) {
    return std::nullopt;
  }
  return m;
}

net::Bytes ViewAckMsg::encode() const {
  auto w = with_type(MsgType::kViewAck);
  w.u32(subscriber);
  w.u64(epoch);
  w.u32(agg_count);
  w.u64(completed);
  w.f64(p99_s);
  w.f64(mean_s);
  return w.take();
}

std::optional<ViewAckMsg> ViewAckMsg::decode(net::ByteView b) {
  auto r = reader_for(b, MsgType::kViewAck);
  if (!r) return std::nullopt;
  ViewAckMsg m;
  m.subscriber = r->u32();
  m.epoch = r->u64();
  m.agg_count = r->u32();
  m.completed = r->u64();
  m.p99_s = r->f64();
  m.mean_s = r->f64();
  if (!r->ok()) return std::nullopt;
  // A watermark covering zero subscribers is meaningless: even a plain
  // ack covers its sender.
  if (m.agg_count == 0) return std::nullopt;
  return m;
}

net::Bytes ViewInterestMsg::encode() const {
  auto w = with_type(MsgType::kViewInterest);
  w.u32(subscriber);
  w.u64(epoch);
  w.u32(static_cast<uint32_t>(arcs.size()));
  for (const Arc& a : arcs) {
    w.ring_id(a.begin());
    w.u64(a.length());
  }
  return w.take();
}

std::optional<ViewInterestMsg> ViewInterestMsg::decode(net::ByteView b) {
  auto r = reader_for(b, MsgType::kViewInterest);
  if (!r) return std::nullopt;
  ViewInterestMsg m;
  m.subscriber = r->u32();
  m.epoch = r->u64();
  // Hostile-count guard: each arc costs 16 bytes on the wire.
  uint32_t n = r->u32();
  if (!r->ok() || static_cast<uint64_t>(n) * 16 > r->remaining()) {
    return std::nullopt;
  }
  m.arcs.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    RingId begin = r->ring_id();
    uint64_t len = r->u64();
    m.arcs.emplace_back(begin, len);
  }
  if (!r->ok()) return std::nullopt;
  return m;
}

net::Bytes ViewPullMsg::encode() const {
  auto w = with_type(MsgType::kViewPull);
  w.u32(subscriber);
  w.u64(have_epoch);
  return w.take();
}

std::optional<ViewPullMsg> ViewPullMsg::decode(net::ByteView b) {
  auto r = reader_for(b, MsgType::kViewPull);
  if (!r) return std::nullopt;
  ViewPullMsg m;
  m.subscriber = r->u32();
  m.have_epoch = r->u64();
  if (!r->ok()) return std::nullopt;
  return m;
}

net::Bytes FetchCompleteMsg::encode() const {
  auto w = with_type(MsgType::kFetchComplete);
  w.u32(node);
  w.u32(new_p);
  return w.take();
}

std::optional<FetchCompleteMsg> FetchCompleteMsg::decode(net::ByteView b) {
  auto r = reader_for(b, MsgType::kFetchComplete);
  if (!r) return std::nullopt;
  FetchCompleteMsg m;
  m.node = r->u32();
  m.new_p = r->u32();
  if (!r->ok()) return std::nullopt;
  return m;
}

net::Bytes ObjectUpdateMsg::encode() const {
  auto w = with_type(MsgType::kObjectUpdate);
  w.ring_id(object_id);
  w.u32(payload_bytes);
  return w.take();
}

std::optional<ObjectUpdateMsg> ObjectUpdateMsg::decode(net::ByteView b) {
  auto r = reader_for(b, MsgType::kObjectUpdate);
  if (!r) return std::nullopt;
  ObjectUpdateMsg m;
  m.object_id = r->ring_id();
  m.payload_bytes = r->u32();
  if (!r->ok()) return std::nullopt;
  return m;
}

net::Bytes UpdateMsg::encode() const {
  auto w = with_type(MsgType::kUpdate);
  w.u32(shard);
  w.u64(lsn);
  w.u8(op);
  w.ring_id(doc_id);
  w.u64(enc_seed);
  w.str(path);
  w.u32(static_cast<uint32_t>(keywords.size()));
  for (const auto& kw : keywords) w.str(kw);
  w.u64(static_cast<uint64_t>(size_bytes));
  w.u64(static_cast<uint64_t>(mtime));
  w.u64(trace);
  return w.take();
}

std::optional<UpdateMsg> UpdateMsg::decode(net::ByteView b) {
  auto r = reader_for(b, MsgType::kUpdate);
  if (!r) return std::nullopt;
  UpdateMsg m;
  m.shard = r->u32();
  m.lsn = r->u64();
  m.op = r->u8();
  m.doc_id = r->ring_id();
  m.enc_seed = r->u64();
  m.path = r->str();
  uint32_t n = r->u32();
  // Each keyword costs at least its 4-byte length prefix; a count the
  // remaining bytes cannot possibly carry is hostile input, rejected
  // before any allocation (the mutation fuzz drives this path).
  if (!r->ok() || static_cast<uint64_t>(n) * 4 > r->remaining()) {
    return std::nullopt;
  }
  m.keywords.reserve(n);
  for (uint32_t i = 0; i < n; ++i) m.keywords.push_back(r->str());
  m.size_bytes = static_cast<int64_t>(r->u64());
  m.mtime = static_cast<int64_t>(r->u64());
  m.trace = r->u64();
  if (!r->ok() || m.op > UpdateMsg::kDelete) return std::nullopt;
  return m;
}

net::Bytes UpdateAckMsg::encode() const {
  auto w = with_type(MsgType::kUpdateAck);
  w.u32(node);
  w.u32(shard);
  w.u64(applied_lsn);
  return w.take();
}

std::optional<UpdateAckMsg> UpdateAckMsg::decode(net::ByteView b) {
  auto r = reader_for(b, MsgType::kUpdateAck);
  if (!r) return std::nullopt;
  UpdateAckMsg m;
  m.node = r->u32();
  m.shard = r->u32();
  m.applied_lsn = r->u64();
  if (!r->ok()) return std::nullopt;
  return m;
}

net::Bytes SyncReqMsg::encode() const {
  auto w = with_type(MsgType::kSyncReq);
  w.u32(node);
  w.u32(shard);
  w.u64(have_lsn);
  w.u64(segment_lsn);
  w.u64(chunk_offset);
  w.u64(trace);
  return w.take();
}

std::optional<SyncReqMsg> SyncReqMsg::decode(net::ByteView b) {
  auto r = reader_for(b, MsgType::kSyncReq);
  if (!r) return std::nullopt;
  SyncReqMsg m;
  m.node = r->u32();
  m.shard = r->u32();
  m.have_lsn = r->u64();
  m.segment_lsn = r->u64();
  m.chunk_offset = r->u64();
  m.trace = r->u64();
  if (!r->ok()) return std::nullopt;
  return m;
}

net::Bytes SyncDataMsg::encode() const {
  auto w = with_type(MsgType::kSyncData);
  w.u32(shard);
  w.u8(full_segment);
  w.u64(issued_lsn);
  w.u64(chunk_offset);
  w.u64(total_ops);
  w.u64(trace);
  w.u32(static_cast<uint32_t>(ops.size()));
  for (const auto& op : ops) w.bytes(op.encode());
  net::Bytes out = w.take();
  // Size guard: the sender's chunk budget (IngestConfig::sync_chunk_bytes)
  // must keep every SYNC_DATA frame far below the transport frame cap —
  // a frame at the cap would wedge the peer's decoder. Trip loudly here
  // rather than ship an undecodable frame.
  if (out.size() > net::kMaxFrameBytes) {
    ROAR_LOG(kError) << "SyncDataMsg encodes to " << out.size()
                     << " bytes, above the " << net::kMaxFrameBytes
                     << "-byte frame cap; chunking is broken";
  }
  return out;
}

std::optional<SyncDataMsg> SyncDataMsg::decode(net::ByteView b) {
  auto r = reader_for(b, MsgType::kSyncData);
  if (!r) return std::nullopt;
  SyncDataMsg m;
  m.shard = r->u32();
  m.full_segment = r->u8();
  m.issued_lsn = r->u64();
  m.chunk_offset = r->u64();
  m.total_ops = r->u64();
  m.trace = r->u64();
  uint32_t n = r->u32();
  if (!r->ok() || static_cast<uint64_t>(n) * 4 > r->remaining()) {
    return std::nullopt;
  }
  m.ops.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    net::Bytes raw = r->bytes();
    if (!r->ok()) return std::nullopt;
    auto op = UpdateMsg::decode(raw);
    if (!op) return std::nullopt;  // nested op must itself be well-formed
    m.ops.push_back(std::move(*op));
  }
  if (!r->ok() || m.full_segment > 1) return std::nullopt;
  // Chunk-geometry guards: a full-segment chunk must fit inside its
  // declared segment; incremental chunks carry no chunk geometry.
  if (m.full_segment) {
    if (m.chunk_offset > m.total_ops ||
        m.ops.size() > m.total_ops - m.chunk_offset) {
      return std::nullopt;
    }
  } else if (m.chunk_offset != 0 || m.total_ops != 0) {
    return std::nullopt;
  }
  return m;
}

net::Bytes NodeStatsMsg::encode() const {
  auto w = with_type(MsgType::kNodeStats);
  w.u32(node);
  w.f64(busy_fraction);
  w.f64(observed_rate);
  return w.take();
}

std::optional<NodeStatsMsg> NodeStatsMsg::decode(net::ByteView b) {
  auto r = reader_for(b, MsgType::kNodeStats);
  if (!r) return std::nullopt;
  NodeStatsMsg m;
  m.node = r->u32();
  m.busy_fraction = r->f64();
  m.observed_rate = r->f64();
  if (!r->ok()) return std::nullopt;
  return m;
}

}  // namespace roar::cluster
