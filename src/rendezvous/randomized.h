// Randomized Distributed Rendezvous (RAND, §3.2), after BubbleStorm.
//
// Object replicas land on c·r random servers; queries visit c·n/r random
// servers. Coverage is probabilistic: with c = 2 a query reaches a given
// object with probability ≈ 1 − e^{−c²} ≈ 98%. Changing r is trivial, and
// robustness to churn is excellent, but every operation costs c× more than
// the deterministic algorithms — the reason the thesis rules RAND out for
// data centers (Table 6.2 quantifies this).
#pragma once

#include "rendezvous/algorithm.h"

namespace roar::rendezvous {

class Randomized : public Algorithm {
 public:
  Randomized(uint32_t n, uint32_t r, double c, uint64_t seed);

  std::string name() const override { return "RAND"; }
  uint32_t server_count() const override { return n_; }
  uint32_t partitioning_level() const override {
    return static_cast<uint32_t>(c_ * n_ / r_ + 0.5);
  }
  double replication_level() const override { return c_ * r_; }

  Placement place_object(uint64_t object_key) override;
  QueryPlan plan_query(uint64_t choice,
                       const std::vector<bool>& alive) const override;
  double combination_count() const override;

  // Probability a query visits at least one replica of a given object
  // (harvest per object): 1 - (1 - q/n)^(c·r) with q query servers.
  double hit_probability() const;

 private:
  uint32_t n_;
  uint32_t r_;
  double c_;
  Rng placement_rng_;
};

}  // namespace roar::rendezvous
