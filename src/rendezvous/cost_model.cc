#include "rendezvous/cost_model.h"

#include <cmath>

namespace roar::rendezvous {

OperationCosts ptn_costs(uint32_t n, uint32_t p) {
  OperationCosts c;
  c.algorithm = "PTN";
  double r = static_cast<double>(n) / p;
  c.store_object = r;   // every server of one cluster
  c.run_query = p;      // one server per cluster
  // Changing r by ±1 with n fixed means re-clustering: a server leaving a
  // cluster re-downloads a full new share; averaged per node this is ~1/p
  // of the dataset for the increase and similar churn for the decrease
  // (§3.1: asymmetric, some servers drop & reload everything).
  c.increase_r_per_node = 1.0 / p;
  c.decrease_r_per_node = 1.0 / p;
  return c;
}

OperationCosts sw_costs(uint32_t n, uint32_t r) {
  OperationCosts c;
  c.algorithm = "SW";
  c.store_object = r;
  c.run_query = std::ceil(static_cast<double>(n) / r);
  // §3.3: increasing r by one copies 1/n of the data per node; decreasing
  // only deletes.
  c.increase_r_per_node = 1.0 / n;
  c.decrease_r_per_node = 0.0;
  return c;
}

OperationCosts rand_costs(uint32_t n, uint32_t r, double cc) {
  OperationCosts c;
  c.algorithm = "RAND";
  c.store_object = cc * r;
  c.run_query = cc * static_cast<double>(n) / r;
  // One extra replica written (or dropped) at the end of the random walk.
  c.increase_r_per_node = cc / n;
  c.decrease_r_per_node = 0.0;
  c.harvest = 1.0 - std::exp(-cc * cc);
  return c;
}

OperationCosts roar_costs(uint32_t n, uint32_t p) {
  OperationCosts c;
  c.algorithm = "ROAR";
  double r = static_cast<double>(n) / p;
  c.store_object = r;  // servers intersecting the 1/p replication arc
  c.run_query = p;
  // §4.5: decreasing p to p' extends every object 1/p' − 1/p further round
  // the ring; per node that is the same minimal 1/n-ish transfer as SW.
  c.increase_r_per_node = 1.0 / n;
  c.decrease_r_per_node = 0.0;
  return c;
}

double optimal_replication(uint32_t n, double b_query, double b_data) {
  if (b_data <= 0) return n;
  return std::sqrt(static_cast<double>(n) * b_query / b_data);
}

double cross_sectional_updates_ptn(uint32_t racks_spanned) {
  return racks_spanned;
}

double cross_sectional_updates_roar(uint32_t racks_spanned) {
  return racks_spanned + 1.0;
}

}  // namespace roar::rendezvous
