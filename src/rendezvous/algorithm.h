// The Distributed Rendezvous algorithm interface (Definition 1).
//
// A DR algorithm decides where each object's replicas live and which set of
// servers a query visits so that, between them, the visited servers hold
// every object. This interface is implemented by the three baseline
// families from Chapter 3 — Partitioned (PTN, the Google algorithm),
// Sliding Window (SW) and Randomized (RAND) — and by an adapter over the
// ROAR core (src/core). The analytical simulator (src/sim) and the
// availability/cost benches treat all algorithms uniformly through it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"

namespace roar::rendezvous {

using ServerId = uint32_t;
inline constexpr ServerId kInvalidServer = UINT32_MAX;

// One object's replica set.
struct Placement {
  std::vector<ServerId> replicas;
};

// One sub-query: which server runs it and what share of the object space it
// must cover (used by the delay model: execution time ∝ share).
struct SubQuery {
  ServerId server = kInvalidServer;
  double share = 0.0;  // fraction of the object id space this part covers
};

// A full query plan: the p (or pq) sub-queries.
struct QueryPlan {
  std::vector<SubQuery> parts;
};

class Algorithm {
 public:
  virtual ~Algorithm() = default;

  virtual std::string name() const = 0;
  virtual uint32_t server_count() const = 0;
  // The minimum partitioning level currently guaranteed correct.
  virtual uint32_t partitioning_level() const = 0;
  // Average replicas per object under the current configuration.
  virtual double replication_level() const = 0;

  // Stores one object (identified by an opaque uniform key; algorithms that
  // need a ring id derive it from the key). Returns its replica set.
  virtual Placement place_object(uint64_t object_key) = 0;

  // Plans a query. `choice` selects among the algorithm's alternative
  // server combinations (SW: r starting offsets; PTN: per-cluster replica
  // choice is made by the scheduler, so `choice` seeds it; ROAR: sweep
  // position). Implementations must guarantee coverage of all objects for
  // every valid choice. alive[s] == false marks failed servers the plan
  // must avoid (algorithms without a failure story may return parts on
  // dead servers; the simulator then counts the query as failed).
  virtual QueryPlan plan_query(uint64_t choice,
                               const std::vector<bool>& alive) const = 0;

  // Number of distinct server combinations a query can be assigned to —
  // the paper's key explanatory metric for delay differences (§3: PTN has
  // r^p, SW has r, ROAR has r·(n/p) granularity, two-ring ROAR r·2^(p-1)).
  virtual double combination_count() const = 0;
};

// Returns true if `plan` covers the whole object space: shares sum to ~1
// and every part is on a live server.
bool plan_is_complete(const QueryPlan& plan, const std::vector<bool>& alive);

}  // namespace roar::rendezvous
