#include "rendezvous/randomized.h"

#include <cmath>
#include <stdexcept>

namespace roar::rendezvous {
namespace {

// Draws `k` distinct servers from [0, n), preferring live ones.
std::vector<ServerId> draw_distinct(uint32_t n, uint32_t k, Rng& rng,
                                    const std::vector<bool>* alive) {
  std::vector<ServerId> out;
  out.reserve(k);
  std::vector<bool> used(n, false);
  uint32_t attempts = 0;
  while (out.size() < k && attempts < 20 * n) {
    ++attempts;
    ServerId s = static_cast<ServerId>(rng.next_below(n));
    if (used[s]) continue;
    if (alive != nullptr && !alive->empty() && !(*alive)[s]) continue;
    used[s] = true;
    out.push_back(s);
  }
  return out;
}

}  // namespace

Randomized::Randomized(uint32_t n, uint32_t r, double c, uint64_t seed)
    : n_(n), r_(r), c_(c), placement_rng_(seed) {
  if (r == 0 || r > n || c <= 0) {
    throw std::invalid_argument("RAND requires 0 < r <= n and c > 0");
  }
}

Placement Randomized::place_object(uint64_t object_key) {
  (void)object_key;
  uint32_t replicas = std::min(
      n_, static_cast<uint32_t>(std::lround(c_ * r_)));
  Placement out;
  out.replicas = draw_distinct(n_, replicas, placement_rng_, nullptr);
  return out;
}

QueryPlan Randomized::plan_query(uint64_t choice,
                                 const std::vector<bool>& alive) const {
  // Choice seeds the random server selection: each choice is one of the
  // (astronomically many) random subsets.
  Rng rng(choice * 0x9E3779B97F4A7C15ull + 1);
  uint32_t q = std::min(n_, partitioning_level());
  QueryPlan plan;
  auto servers = draw_distinct(n_, q, rng, &alive);
  double share = servers.empty() ? 0.0 : 1.0 / servers.size();
  for (ServerId s : servers) {
    plan.parts.push_back(SubQuery{s, share});
  }
  return plan;
}

double Randomized::combination_count() const {
  // log(n choose q) via lgamma; returned as exp (may be +inf for big n).
  double n = n_;
  double q = partitioning_level();
  double log_c = std::lgamma(n + 1) - std::lgamma(q + 1) -
                 std::lgamma(n - q + 1);
  return std::exp(log_c);
}

double Randomized::hit_probability() const {
  double q = partitioning_level();
  double replicas = c_ * r_;
  return 1.0 - std::pow(1.0 - q / n_, replicas);
}

}  // namespace roar::rendezvous
