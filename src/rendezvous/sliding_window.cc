#include "rendezvous/sliding_window.h"

#include <stdexcept>

namespace roar::rendezvous {

SlidingWindow::SlidingWindow(uint32_t n, uint32_t r, uint64_t seed)
    : n_(n), r_(r), placement_rng_(seed) {
  if (r == 0 || r > n) {
    throw std::invalid_argument("SW requires 0 < r <= n");
  }
}

Placement SlidingWindow::place_object(uint64_t object_key) {
  (void)object_key;
  Placement out;
  uint32_t start = static_cast<uint32_t>(placement_rng_.next_below(n_));
  out.replicas.reserve(r_);
  for (uint32_t i = 0; i < r_; ++i) {
    out.replicas.push_back((start + i) % n_);
  }
  return out;
}

QueryPlan SlidingWindow::plan_query(uint64_t choice,
                                    const std::vector<bool>& alive) const {
  QueryPlan plan;
  uint32_t offset = static_cast<uint32_t>(choice % r_);
  uint32_t parts = partitioning_level();
  double share = 1.0 / parts;
  for (uint32_t i = 0; i < parts; ++i) {
    uint32_t node = (offset + i * r_) % n_;
    if (alive.empty() || alive[node]) {
      plan.parts.push_back(SubQuery{node, share});
      continue;
    }
    // Failed node: its window is jointly held by its ring neighbours; send
    // half the sub-query to each live one (load concentration, §3.3).
    uint32_t pred = (node + n_ - 1) % n_;
    uint32_t succ = (node + 1) % n_;
    bool pred_ok = alive.empty() || alive[pred];
    bool succ_ok = alive.empty() || alive[succ];
    if (pred_ok && succ_ok) {
      plan.parts.push_back(SubQuery{pred, share / 2});
      plan.parts.push_back(SubQuery{succ, share / 2});
    } else {
      // Both neighbours needed; if either is also dead the objects whose
      // window ended (or started) at `node` are unreachable.
      plan.parts.push_back(SubQuery{kInvalidServer, share});
    }
  }
  return plan;
}

double SlidingWindow::reconfiguration_transfer(uint32_t r_new) const {
  if (r_new <= r_) return 0.0;  // shrinking only deletes
  // Growing by Δr: each node copies Δr/n of the dataset; n nodes total.
  return static_cast<double>(r_new - r_) / n_ * n_;
}

}  // namespace roar::rendezvous
