// Sliding Window Distributed Rendezvous (SW, §3.3).
//
// The n nodes sit on a discrete circle; object k is stored on nodes
// k … k+r−1 (mod n); a query visits every r-th node from one of r starting
// offsets. Changing r is the cheapest of all algorithms (extend/shrink each
// node's window), but SW has only r server combinations per query, poor
// failure behaviour (a failed node's items must be matched by both of its
// neighbours) and no support for heterogeneous servers — exactly the
// weaknesses ROAR fixes while keeping the window placement.
#pragma once

#include "rendezvous/algorithm.h"

namespace roar::rendezvous {

class SlidingWindow : public Algorithm {
 public:
  SlidingWindow(uint32_t n, uint32_t r, uint64_t seed);

  std::string name() const override { return "SW"; }
  uint32_t server_count() const override { return n_; }
  uint32_t partitioning_level() const override {
    return (n_ + r_ - 1) / r_;  // ceil: step r covers the circle
  }
  double replication_level() const override { return r_; }

  Placement place_object(uint64_t object_key) override;
  QueryPlan plan_query(uint64_t choice,
                       const std::vector<bool>& alive) const override;
  double combination_count() const override { return r_; }

  // SW failure handling: when a visited node is dead, the plan adds both
  // its predecessor and successor (which jointly hold its window) —
  // concentrating load, per §3.3.
  uint32_t replication() const { return r_; }

  // Data transfer to change r → r_new, in dataset copies: |Δr|/n per node
  // when growing, zero when shrinking (§3.3's "very nice properties").
  double reconfiguration_transfer(uint32_t r_new) const;

 private:
  uint32_t n_;
  uint32_t r_;
  Rng placement_rng_;
};

}  // namespace roar::rendezvous
