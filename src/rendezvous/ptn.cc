#include "rendezvous/ptn.h"

#include <cmath>
#include <stdexcept>

namespace roar::rendezvous {

Ptn::Ptn(uint32_t n, uint32_t p, uint64_t seed)
    : n_(n), p_(p), placement_rng_(seed) {
  if (p == 0 || p > n) {
    throw std::invalid_argument("PTN requires 0 < p <= n");
  }
  clusters_.resize(p_);
  cluster_of_.resize(n_);
  objects_per_cluster_.assign(p_, 0);
  // Even split; the first (n mod p) clusters get one extra server.
  uint32_t base = n_ / p_;
  uint32_t extra = n_ % p_;
  ServerId next = 0;
  for (uint32_t c = 0; c < p_; ++c) {
    uint32_t size = base + (c < extra ? 1 : 0);
    for (uint32_t i = 0; i < size; ++i) {
      clusters_[c].push_back(next);
      cluster_of_[next] = c;
      ++next;
    }
  }
}

Placement Ptn::place_object(uint64_t object_key) {
  (void)object_key;
  // Random cluster (the paper: "stored on all the servers in one randomly
  // chosen cluster"); we also track per-cluster counts for balance stats.
  uint32_t c = static_cast<uint32_t>(placement_rng_.next_below(p_));
  ++objects_per_cluster_[c];
  Placement out;
  out.replicas = clusters_[c];
  return out;
}

QueryPlan Ptn::plan_query(uint64_t choice,
                          const std::vector<bool>& alive) const {
  QueryPlan plan;
  plan.parts.reserve(p_);
  double share = 1.0 / p_;
  for (uint32_t c = 0; c < p_; ++c) {
    const auto& members = clusters_[c];
    // Rotate through replicas by `choice`; skip dead servers.
    ServerId chosen = kInvalidServer;
    for (size_t i = 0; i < members.size(); ++i) {
      ServerId s = members[(choice + i) % members.size()];
      if (alive.empty() || alive[s]) {
        chosen = s;
        break;
      }
    }
    plan.parts.push_back(SubQuery{chosen, share});
  }
  return plan;
}

double Ptn::combination_count() const {
  // r^p with r = n/p (geometric mean of actual cluster sizes).
  double log_count = 0.0;
  for (const auto& c : clusters_) {
    log_count += std::log(static_cast<double>(c.size()));
  }
  return std::exp(log_count);
}

double Ptn::reconfiguration_transfer(uint32_t p_new) const {
  if (p_new == p_) return 0.0;
  if (p_new < p_) {
    // Decrease p (grow r): destroy (p - p_new) clusters; their objects are
    // re-stored on all servers of surviving clusters, and the freed servers
    // are re-filled with their new cluster's data. Every freed server
    // downloads a full 1/p_new share; every surviving server downloads the
    // migrated objects, (p - p_new)/p of the dataset spread over p_new
    // clusters. Measured in dataset copies: (see §3.1)
    double destroyed = static_cast<double>(p_ - p_new);
    double migrated_per_survivor = destroyed / static_cast<double>(p_);
    double survivors_load =
        migrated_per_survivor * static_cast<double>(n_) / p_;  // r copies
    double freed_servers = destroyed * (static_cast<double>(n_) / p_);
    double freed_load = freed_servers / p_new;
    return survivors_load + freed_load;
  }
  // Increase p (shrink r): carve (p_new - p) new clusters out of existing
  // ones; each new-cluster server drops its data and downloads its share
  // of 1/p_new of the dataset.
  double new_clusters = static_cast<double>(p_new - p_);
  double servers_per_cluster = static_cast<double>(n_) / p_new;
  return new_clusters * servers_per_cluster / p_new;
}

bool plan_is_complete(const QueryPlan& plan, const std::vector<bool>& alive) {
  double total = 0.0;
  for (const auto& part : plan.parts) {
    if (part.server == kInvalidServer) return false;
    if (!alive.empty() && !alive[part.server]) return false;
    total += part.share;
  }
  return total > 0.999;
}

}  // namespace roar::rendezvous
