// Analytical per-operation message/transfer costs for all DR algorithms
// (Table 6.2 and §6.3), plus the bandwidth-optimal replication level of
// §2.3.2 and the cross-sectional bandwidth estimate of §4.9.2.
#pragma once

#include <cstdint>
#include <string>

namespace roar::rendezvous {

// Messages (or unit-object transfers) per basic operation.
struct OperationCosts {
  std::string algorithm;
  double store_object = 0;      // replicas written per object
  double run_query = 0;         // sub-query messages per query
  double increase_r_per_node = 0;  // dataset fraction copied per node, r→r+1
  double decrease_r_per_node = 0;  // dataset fraction copied per node, r→r-1
  double harvest = 1.0;         // fraction of objects a query reaches
};

OperationCosts ptn_costs(uint32_t n, uint32_t p);
OperationCosts sw_costs(uint32_t n, uint32_t r);
OperationCosts rand_costs(uint32_t n, uint32_t r, double c);
OperationCosts roar_costs(uint32_t n, uint32_t p);

// §2.3.2: r that minimises total bandwidth r·B_data + (n/r)·B_query.
double optimal_replication(uint32_t n, double b_query, double b_data);

// §4.9.2: cross-sectional (inter-rack) transfers per object update when a
// replica window spans `racks_spanned` racks. PTN: one message per rack;
// ROAR with rack-contiguous ring placement: racks+1.
double cross_sectional_updates_ptn(uint32_t racks_spanned);
double cross_sectional_updates_roar(uint32_t racks_spanned);

}  // namespace roar::rendezvous
