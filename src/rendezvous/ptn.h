// Partitioned Distributed Rendezvous (PTN, §3.1) — the cluster-based
// algorithm used by Google [BDH03].
//
// The n servers are divided into p clusters of ~n/p servers; each object is
// stored on every server of one random cluster; each query visits one
// server per cluster. PTN's strength is its r^p server combinations per
// query (every cluster contributes an independent choice); its weakness is
// reconfiguration: changing p means destroying/creating clusters and
// reloading whole server datasets, which this class also models
// (reconfiguration_cost) for §6.3 and Table 6.2.
#pragma once

#include "rendezvous/algorithm.h"

namespace roar::rendezvous {

class Ptn : public Algorithm {
 public:
  // Divides `n` servers into `p` clusters as evenly as possible.
  Ptn(uint32_t n, uint32_t p, uint64_t seed);

  std::string name() const override { return "PTN"; }
  uint32_t server_count() const override { return n_; }
  uint32_t partitioning_level() const override { return p_; }
  double replication_level() const override {
    return static_cast<double>(n_) / p_;
  }

  Placement place_object(uint64_t object_key) override;
  QueryPlan plan_query(uint64_t choice,
                       const std::vector<bool>& alive) const override;
  double combination_count() const override;

  // Cluster membership, used by the front-end scheduler (per-part greedy
  // choice is optimal because PTN's parts are independent).
  const std::vector<std::vector<ServerId>>& clusters() const {
    return clusters_;
  }
  uint32_t cluster_of(ServerId s) const { return cluster_of_[s]; }

  // Objects (fraction of the dataset) each server must *download* when the
  // partitioning level changes p → p_new with n fixed (§3.1's disruptive
  // reconfiguration). Returns total data transferred in units of "copies
  // of the full dataset".
  double reconfiguration_transfer(uint32_t p_new) const;

 private:
  uint32_t n_;
  uint32_t p_;
  Rng placement_rng_;
  std::vector<std::vector<ServerId>> clusters_;
  std::vector<uint32_t> cluster_of_;
  std::vector<uint64_t> objects_per_cluster_;
};

}  // namespace roar::rendezvous
